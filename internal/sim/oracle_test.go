package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRunUntilCappedMigrationInvariant pins down the contract of
// position()'s capped exit: RunUntil(limit) that stops between events
// calls setBase(limit), eagerly migrating far events the new window
// covers into ring buckets even though the caller returns false. The
// invariant that makes this safe is that every migrated event fires at
// a cycle >= limit (strictly later than any cycle a smaller subsequent
// limit could ask for), so no later RunUntil with a smaller limit, and
// no Schedule interleaved at the capped cycle, can observe a window
// that skipped past a migrated event.
func TestRunUntilCappedMigrationInvariant(t *testing.T) {
	bothQueues(t, func(t *testing.T, k *Kernel) {
		var got []string
		log := func(tag string) func() {
			return func() { got = append(got, fmt.Sprintf("%s@%d", tag, k.Now())) }
		}
		// Far events just beyond the initial window, including both
		// sides of the base+ringSize boundary.
		k.At(ringSize-1, log("edge-in"))
		k.At(ringSize, log("edge-out"))
		k.At(ringSize+1, log("far-a"))
		k.At(2*ringSize+5, log("far-b"))

		// Capped run that stops between events: for the calendar queue
		// this advances base to the limit and migrates far-a (and
		// edge-out) into ring buckets while returning "nothing fired
		// past the limit".
		k.RunUntil(ringSize - 1)
		if want := []string{fmt.Sprintf("edge-in@%d", ringSize-1)}; len(got) != 1 || got[0] != want[0] {
			t.Fatalf("after capped run got %v, want %v", got, want)
		}

		// A subsequent RunUntil with a *smaller* limit must fire nothing
		// and must not move time backwards.
		k.RunUntil(5)
		if len(got) != 1 {
			t.Fatalf("smaller-limit RunUntil fired extra events: %v", got)
		}
		if k.Now() != ringSize-1 {
			t.Fatalf("Now() = %d after smaller-limit RunUntil, want %d", k.Now(), ringSize-1)
		}

		// An interleaved Schedule at the capped cycle lands before every
		// migrated event.
		k.Schedule(0, log("interleaved"))
		k.Schedule(1, log("interleaved+1"))
		k.Run()
		want := []string{
			fmt.Sprintf("edge-in@%d", ringSize-1),
			fmt.Sprintf("interleaved@%d", ringSize-1),
			fmt.Sprintf("edge-out@%d", ringSize),
			fmt.Sprintf("interleaved+1@%d", ringSize),
			fmt.Sprintf("far-a@%d", ringSize+1),
			fmt.Sprintf("far-b@%d", 2*ringSize+5),
		}
		if len(got) != len(want) {
			t.Fatalf("got %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("event %d = %q, want %q (full: %v)", i, got[i], want[i], got)
			}
		}
	})
}

// TestRunUntilCappedThenRepeatedCaps walks the window forward through a
// series of capped RunUntil calls whose limits straddle successive
// base+ringSize boundaries, with a pending far event beyond each cap,
// verifying no cap sequence can lose or reorder the migrated events.
func TestRunUntilCappedThenRepeatedCaps(t *testing.T) {
	bothQueues(t, func(t *testing.T, k *Kernel) {
		var fired []Time
		for _, at := range []Time{ringSize + 1, 2 * ringSize, 3*ringSize - 1, 3 * ringSize, 3*ringSize + 1} {
			at := at
			k.At(at, func() { fired = append(fired, at) })
		}
		// Caps chosen to land between events and force migrations.
		for _, cap := range []Time{ringSize - 1, ringSize + 2, 2*ringSize - 1, 2, 2 * ringSize, 4 * ringSize} {
			k.RunUntil(cap)
		}
		want := []Time{ringSize + 1, 2 * ringSize, 3*ringSize - 1, 3 * ringSize, 3*ringSize + 1}
		if len(fired) != len(want) {
			t.Fatalf("fired %v, want %v", fired, want)
		}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("fired[%d] = %d, want %d", i, fired[i], want[i])
			}
		}
		if k.Now() != 4*ringSize {
			t.Fatalf("Now() = %d, want %d", k.Now(), 4*ringSize)
		}
	})
}

// oracleRun drives one kernel through a seeded pseudo-random sequence of
// schedule / cascade / halt / RunUntil / Step operations and returns the
// observable trace: firing order with cycles, final time, and the fired
// counter. The op stream is a pure function of the seed, so running it
// once per queue implementation yields directly comparable traces.
func oracleRun(q QueueKind, seed int64) (trace []string, now Time, fired uint64) {
	k := NewKernel(WithQueue(q))
	rng := rand.New(rand.NewSource(seed))
	id := 0
	// Delay mix biased toward the interesting boundaries: same-cycle
	// cascades (compaction path), window edges base+ringSize±1, and far
	// events that must migrate back.
	delays := []Time{0, 0, 1, 2, 63, 64, ringSize - 1, ringSize, ringSize + 1, 2 * ringSize, 3*ringSize + 7}
	var schedule func(depth int)
	schedule = func(depth int) {
		n := id
		id++
		d := delays[rng.Intn(len(delays))]
		if rng.Intn(4) == 0 {
			d = Time(rng.Intn(4 * ringSize))
		}
		k.Schedule(d, func() {
			trace = append(trace, fmt.Sprintf("%d@%d", n, k.Now()))
			switch {
			case depth < 3 && rng.Intn(3) == 0:
				// Same-cycle cascade long enough to push the bucket
				// cursor past the pos >= 64 compaction threshold.
				for i := 0; i < 70; i++ {
					m := id
					id++
					k.Schedule(0, func() { trace = append(trace, fmt.Sprintf("%d@%d", m, k.Now())) })
				}
			case depth < 5:
				schedule(depth + 1)
				if rng.Intn(2) == 0 {
					schedule(depth + 1)
				}
			}
			if rng.Intn(64) == 0 {
				k.Halt()
			}
		})
	}
	for round := 0; round < 40; round++ {
		for i := 0; i < 4; i++ {
			schedule(0)
		}
		switch rng.Intn(5) {
		case 0:
			// Capped run landing between events, often straddling a
			// window boundary — exercises the eager-migration exit.
			k.RunUntil(k.Now() + Time(rng.Intn(2*ringSize)))
		case 1:
			// Smaller-or-equal limit: must be a no-op for past cycles.
			limit := Time(rng.Intn(int(k.Now()) + 1))
			k.RunUntil(limit)
		case 2:
			for i := 0; i < rng.Intn(8); i++ {
				k.Step()
			}
		case 3:
			k.RunUntil(k.Now() + ringSize + Time(rng.Intn(3))-1)
		case 4:
			k.RunUntil(k.Now())
		}
	}
	k.Run()
	// A Halt fired by the final Run leaves events pending; drain them so
	// both queues account for every scheduled event.
	for k.Pending() > 0 {
		k.Run()
	}
	return trace, k.Now(), k.Events()
}

// TestCalendarFuzzOracleMatchesLegacy is the randomized equivalence
// oracle: identical seeded schedule/halt/RunUntil/Step sequences through
// the calendar queue and the legacy heap must produce identical fire
// order, identical final time, and identical fired counts — including
// the same-cycle cascade compaction path and far-heap migrations at the
// base+ringSize±1 boundaries.
func TestCalendarFuzzOracleMatchesLegacy(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ct, cn, cf := oracleRun(CalendarQueue, seed)
			lt, ln, lf := oracleRun(LegacyHeap, seed)
			if len(ct) != len(lt) {
				t.Fatalf("trace lengths differ: calendar %d, legacy %d", len(ct), len(lt))
			}
			for i := range ct {
				if ct[i] != lt[i] {
					t.Fatalf("trace[%d] differs: calendar %q, legacy %q", i, ct[i], lt[i])
				}
			}
			if cn != ln {
				t.Fatalf("final Now differs: calendar %d, legacy %d", cn, ln)
			}
			if cf != lf {
				t.Fatalf("fired counts differ: calendar %d, legacy %d", cf, lf)
			}
			if len(ct) < 200 {
				t.Fatalf("oracle run too small to be meaningful: %d events", len(ct))
			}
		})
	}
}

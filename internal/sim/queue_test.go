package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// bothQueues runs fn once per queue implementation so behavioural tests
// cover the calendar ring and the legacy heap identically.
func bothQueues(t *testing.T, fn func(t *testing.T, k *Kernel)) {
	t.Helper()
	for _, q := range []QueueKind{CalendarQueue, LegacyHeap} {
		name := "calendar"
		if q == LegacyHeap {
			name = "legacy"
		}
		t.Run(name, func(t *testing.T) {
			fn(t, NewKernel(WithQueue(q)))
		})
	}
}

func TestQueueKindSelection(t *testing.T) {
	if q := NewKernel().Queue(); q != CalendarQueue {
		t.Fatalf("default queue = %v, want CalendarQueue", q)
	}
	if q := NewKernel(WithQueue(LegacyHeap)).Queue(); q != LegacyHeap {
		t.Fatalf("WithQueue(LegacyHeap) queue = %v, want LegacyHeap", q)
	}
	old := DefaultQueue
	DefaultQueue = LegacyHeap
	defer func() { DefaultQueue = old }()
	if q := NewKernel().Queue(); q != LegacyHeap {
		t.Fatalf("DefaultQueue=LegacyHeap kernel queue = %v, want LegacyHeap", q)
	}
}

// TestCalendarFarFutureOrdering schedules events far beyond the ring
// window interleaved with near events and checks global (time, FIFO)
// order survives the far-heap migration.
func TestCalendarFarFutureOrdering(t *testing.T) {
	bothQueues(t, func(t *testing.T, k *Kernel) {
		var got []string
		add := func(at Time, tag string) {
			k.At(at, func() { got = append(got, fmt.Sprintf("%d:%s", at, tag)) })
		}
		// Far events first (beyond ringSize), then near, then same-cycle
		// duplicates to exercise FIFO ties across the migration boundary.
		add(10_000, "far-a")
		add(10_000, "far-b")
		add(700, "mid")
		add(3, "near")
		add(10_000, "far-c")
		k.Run()
		want := []string{"3:near", "700:mid", "10000:far-a", "10000:far-b", "10000:far-c"}
		if len(got) != len(want) {
			t.Fatalf("got %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("event %d = %q, want %q (full: %v)", i, got[i], want[i], got)
			}
		}
	})
}

// TestCalendarRandomStormMatchesLegacy drives both queues with an
// identical pseudo-random schedule (including events landing exactly on
// window boundaries) and requires identical firing order.
func TestCalendarRandomStormMatchesLegacy(t *testing.T) {
	run := func(q QueueKind) []string {
		k := NewKernel(WithQueue(q))
		rng := rand.New(rand.NewSource(42))
		var got []string
		var id int
		var spawn func(depth int)
		spawn = func(depth int) {
			n := id
			id++
			// Mix of same-cycle, in-window, boundary and far delays.
			delays := []Time{0, 1, ringSize - 1, ringSize, ringSize + 1, Time(rng.Intn(4 * ringSize))}
			d := delays[rng.Intn(len(delays))]
			k.Schedule(d, func() {
				got = append(got, fmt.Sprintf("%d@%d", n, k.Now()))
				if depth < 4 {
					spawn(depth + 1)
					spawn(depth + 1)
				}
			})
		}
		for i := 0; i < 8; i++ {
			spawn(0)
		}
		k.Run()
		return got
	}
	a, b := run(CalendarQueue), run(LegacyHeap)
	if len(a) != len(b) {
		t.Fatalf("event counts differ: calendar %d, legacy %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: calendar %q, legacy %q", i, a[i], b[i])
		}
	}
	if len(a) < 100 {
		t.Fatalf("storm too small to be meaningful: %d events", len(a))
	}
}

// TestRunUntilBetweenEvents advances time to a t that no event lands on,
// with the next event beyond the calendar window, and checks that (a) the
// queue keeps the pending event, (b) time reads t, and (c) scheduling at
// the new current time still works — i.e. the bucket window followed time.
func TestRunUntilBetweenEvents(t *testing.T) {
	bothQueues(t, func(t *testing.T, k *Kernel) {
		var fired []Time
		k.At(5, func() { fired = append(fired, k.Now()) })
		k.At(3*ringSize, func() { fired = append(fired, k.Now()) })

		k.RunUntil(ringSize + 7) // lands strictly between the two events
		if k.Now() != ringSize+7 {
			t.Fatalf("Now() = %d, want %d", k.Now(), ringSize+7)
		}
		if len(fired) != 1 || fired[0] != 5 {
			t.Fatalf("fired = %v, want [5]", fired)
		}
		if k.Pending() != 1 {
			t.Fatalf("Pending() = %d, want 1", k.Pending())
		}

		// The ring is empty here; a same-cycle schedule must fire before
		// the far event and at the correct cycle.
		k.Schedule(0, func() { fired = append(fired, k.Now()) })
		k.Run()
		want := []Time{5, ringSize + 7, 3 * ringSize}
		if len(fired) != 3 || fired[1] != want[1] || fired[2] != want[2] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	})
}

// TestRunUntilEmptyQueueThenSchedule: RunUntil on a drained queue must
// still advance time, and later scheduling from that time must work even
// though the calendar window was never walked forward.
func TestRunUntilEmptyQueueThenSchedule(t *testing.T) {
	bothQueues(t, func(t *testing.T, k *Kernel) {
		k.RunUntil(1_000_000)
		if k.Now() != 1_000_000 {
			t.Fatalf("Now() = %d, want 1000000", k.Now())
		}
		var at Time
		k.Schedule(2, func() { at = k.Now() })
		k.Run()
		if at != 1_000_002 {
			t.Fatalf("event fired at %d, want 1000002", at)
		}
	})
}

// TestWaitAnySweepsLosers is the regression test for the stale-
// subscription leak: a WaitAny polling loop must not grow the waiter
// lists of the signals that keep losing.
func TestWaitAnySweepsLosers(t *testing.T) {
	bothQueues(t, func(t *testing.T, k *Kernel) {
		a := NewSignal(k, "a")
		b := NewSignal(k, "b")
		c := NewSignal(k, "c")
		const rounds = 100
		wins := 0
		k.Go("poller", func(p *Proc) {
			for i := 0; i < rounds; i++ {
				if got := p.WaitAny(a, b, c); got != 1 {
					t.Errorf("round %d: WaitAny = %d, want 1", i, got)
					return
				}
				wins++
			}
		})
		k.Go("firer", func(p *Proc) {
			for i := 0; i < rounds; i++ {
				p.Sleep(10)
				b.Fire()
			}
		})
		k.Run()
		if wins != rounds {
			t.Fatalf("poller won %d rounds, want %d", wins, rounds)
		}
		for _, s := range []*Signal{a, b, c} {
			if n := len(s.waiters); n != 0 {
				t.Errorf("signal %s still holds %d stale waiters after %d rounds", s.name, n, rounds)
			}
		}
	})
}

// TestWaitAnyStaleFireIsNoop: after one signal of a WaitAny set wins,
// firing a losing signal later must not wake anything or panic — its
// subscription was swept.
func TestWaitAnyStaleFireIsNoop(t *testing.T) {
	bothQueues(t, func(t *testing.T, k *Kernel) {
		a := NewSignal(k, "a")
		b := NewSignal(k, "b")
		wakes := 0
		k.Go("waiter", func(p *Proc) {
			if got := p.WaitAny(a, b); got != 0 {
				t.Errorf("WaitAny = %d, want 0", got)
			}
			wakes++
			p.Sleep(100) // stay alive across the stale fire
		})
		k.Go("driver", func(p *Proc) {
			p.Sleep(1)
			a.Fire()
			p.Sleep(1)
			b.Fire() // must be a no-op: waiter already left this WaitAny
		})
		k.Run()
		if wakes != 1 {
			t.Fatalf("waiter woke %d times, want 1", wakes)
		}
	})
}

// TestWaitAnySameCycleDoubleFire: two signals of one WaitAny set firing
// in the same cycle must wake the process exactly once, attributed to
// whichever fired first.
func TestWaitAnySameCycleDoubleFire(t *testing.T) {
	bothQueues(t, func(t *testing.T, k *Kernel) {
		a := NewSignal(k, "a")
		b := NewSignal(k, "b")
		var got []int
		k.Go("waiter", func(p *Proc) {
			got = append(got, p.WaitAny(a, b))
		})
		k.Schedule(5, func() {
			b.Fire()
			a.Fire()
		})
		k.Run()
		if len(got) != 1 || got[0] != 1 {
			t.Fatalf("wakes = %v, want [1] (first firer wins)", got)
		}
	})
}

// TestResourceFIFOFairness: N contenders acquiring in a loop must be
// granted strictly round-robin — no waiter is ever passed over.
func TestResourceFIFOFairness(t *testing.T) {
	bothQueues(t, func(t *testing.T, k *Kernel) {
		r := NewResource(k, "ddr")
		const workers = 5
		const rounds = 20
		var grants []int
		for w := 0; w < workers; w++ {
			w := w
			k.Go(fmt.Sprintf("w%d", w), func(p *Proc) {
				for i := 0; i < rounds; i++ {
					r.Acquire(p)
					grants = append(grants, w)
					p.Sleep(3)
					r.Release()
				}
			})
		}
		k.Run()
		if len(grants) != workers*rounds {
			t.Fatalf("grants = %d, want %d", len(grants), workers*rounds)
		}
		// All workers enqueue at cycle 0 in spawn order and re-enqueue
		// immediately after releasing, so FIFO ⇒ strict round-robin.
		for i, g := range grants {
			if g != i%workers {
				t.Fatalf("grant %d went to worker %d, want %d (FIFO violated)", i, g, i%workers)
			}
		}
		if r.Busy() {
			t.Fatal("resource still busy after all workers finished")
		}
	})
}

// TestSchedulePastWindowAfterIdle: push events far enough apart that the
// window repeatedly goes stale, exercising the far-heap catch-up path.
func TestSchedulePastWindowAfterIdle(t *testing.T) {
	k := NewKernel()
	var fired []Time
	var step func()
	step = func() {
		fired = append(fired, k.Now())
		if len(fired) < 6 {
			k.Schedule(10*ringSize, step)
		}
	}
	k.Schedule(1, step)
	k.Run()
	if len(fired) != 6 {
		t.Fatalf("fired %d times, want 6: %v", len(fired), fired)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i]-fired[i-1] != 10*ringSize {
			t.Fatalf("gap %d = %d cycles, want %d", i, fired[i]-fired[i-1], 10*ringSize)
		}
	}
}

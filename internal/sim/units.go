package sim

import "math"

// The whole design runs from a single 100 MHz clock (paper §III-B: "The
// clock frequency is set to 100 MHz due to the ICAP maximum frequency on
// FPGAs of 7 series"). These helpers convert between cycles of that clock
// and wall-clock units for reporting.

// ClockHz is the system clock frequency in Hertz.
const ClockHz = 100_000_000

// CyclesPerMicrosecond is the number of system clock cycles per µs.
const CyclesPerMicrosecond = ClockHz / 1_000_000

// Micros converts a cycle count to microseconds.
func Micros(t Time) float64 { return float64(t) / CyclesPerMicrosecond }

// Millis converts a cycle count to milliseconds.
func Millis(t Time) float64 { return Micros(t) / 1000 }

// FromMicros converts microseconds to cycles, rounding to the nearest
// cycle. Truncation would lose a cycle whenever the float product lands
// just under an integer (0.29 µs * 100 = 28.999999999999996 cycles),
// which the workload generators hit routinely; rounding makes
// Micros(FromMicros(us)) exact for every µs value that is itself a
// whole number of cycles.
func FromMicros(us float64) Time { return Time(math.Round(us * CyclesPerMicrosecond)) }

// MBPerSec returns the throughput in MB/s (decimal megabytes, as the
// paper reports: 400 MB/s theoretical ICAP maximum = 4 bytes x 100 MHz)
// for transferring n bytes in t cycles.
func MBPerSec(n int, t Time) float64 {
	if t == 0 {
		return 0
	}
	bytesPerSecond := float64(n) / (float64(t) / ClockHz)
	return bytesPerSecond / 1e6
}

package sim

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Schedule(10, func() { order = append(order, 2) })
	k.Schedule(5, func() { order = append(order, 1) })
	k.Schedule(10, func() { order = append(order, 3) }) // same cycle, later seq
	k.Schedule(20, func() { order = append(order, 4) })
	k.Run()
	want := []int{1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("ran %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if k.Now() != 20 {
		t.Errorf("Now() = %d, want 20", k.Now())
	}
}

func TestAtPastPanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(10, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.At(5, func() {})
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.Schedule(10, func() { fired++ })
	k.Schedule(30, func() { fired++ })
	k.RunUntil(20)
	if fired != 1 {
		t.Errorf("fired = %d at cycle 20, want 1", fired)
	}
	if k.Now() != 20 {
		t.Errorf("Now() = %d, want 20", k.Now())
	}
	k.RunUntil(40)
	if fired != 2 {
		t.Errorf("fired = %d at cycle 40, want 2", fired)
	}
}

func TestHalt(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.Schedule(1, func() { ran++; k.Halt() })
	k.Schedule(2, func() { ran++ })
	k.Run()
	if ran != 1 {
		t.Fatalf("ran = %d after Halt, want 1", ran)
	}
	k.Run() // resumes
	if ran != 2 {
		t.Fatalf("ran = %d after resume, want 2", ran)
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel()
	var times []Time
	k.Schedule(5, func() {
		times = append(times, k.Now())
		k.Schedule(5, func() { times = append(times, k.Now()) })
		k.Schedule(0, func() { times = append(times, k.Now()) })
	})
	k.Run()
	if len(times) != 3 || times[0] != 5 || times[1] != 5 || times[2] != 10 {
		t.Fatalf("times = %v, want [5 5 10]", times)
	}
}

func TestProcSleep(t *testing.T) {
	k := NewKernel()
	var wake []Time
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(100)
		wake = append(wake, p.Now())
		p.Sleep(50)
		wake = append(wake, p.Now())
		p.Sleep(0)
		wake = append(wake, p.Now())
	})
	k.Run()
	if len(wake) != 3 || wake[0] != 100 || wake[1] != 150 || wake[2] != 150 {
		t.Fatalf("wake = %v, want [100 150 150]", wake)
	}
}

func TestProcInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var trace []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			k.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					trace = append(trace, name)
					p.Sleep(10)
				}
			})
		}
		k.Run()
		return trace
	}
	first := run()
	for trial := 0; trial < 20; trial++ {
		got := run()
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("trial %d: trace %v differs from %v", trial, got, first)
			}
		}
	}
	// Same-cycle processes run in spawn order.
	want := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("trace = %v, want %v", first, want)
		}
	}
}

func TestProcPanicPropagates(t *testing.T) {
	k := NewKernel()
	k.Go("boom", func(p *Proc) {
		p.Sleep(1)
		panic("kaput")
	})
	defer func() {
		if recover() == nil {
			t.Fatal("process panic did not propagate to Run")
		}
	}()
	k.Run()
}

func TestProcPanicPreservesValueAndStack(t *testing.T) {
	sentinel := errors.New("dma engine wedged")
	k := NewKernel()
	k.Go("boom", func(p *Proc) {
		p.Sleep(1)
		panicInProcess(sentinel)
	})
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *PanicError", r)
		}
		if pe.Proc != "boom" {
			t.Errorf("Proc = %q, want boom", pe.Proc)
		}
		if pe.Value != sentinel {
			t.Errorf("Value = %v, want the original panic value", pe.Value)
		}
		if !errors.Is(pe, sentinel) {
			t.Error("errors.Is does not see through PanicError")
		}
		want := `sim: process "boom" panicked: dma engine wedged`
		if pe.Error() != want {
			t.Errorf("Error() = %q, want %q", pe.Error(), want)
		}
		// The captured stack must point at the panic site inside the
		// process goroutine, not at dispatch.
		if !strings.Contains(string(pe.Stack), "panicInProcess") {
			t.Errorf("Stack does not contain the panic site:\n%s", pe.Stack)
		}
	}()
	k.Run()
}

// panicInProcess exists so the captured stack has a recognizable frame.
func panicInProcess(v interface{}) { panic(v) }

func TestSignalPulse(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "pulse")
	var woke []Time
	k.Go("waiter", func(p *Proc) {
		p.Wait(s)
		woke = append(woke, p.Now())
	})
	k.Schedule(42, s.Fire)
	k.Run()
	if len(woke) != 1 || woke[0] != 42 {
		t.Fatalf("woke = %v, want [42]", woke)
	}
}

func TestSignalLatched(t *testing.T) {
	k := NewKernel()
	s := NewLatchedSignal(k, "done")
	var woke []Time
	k.Schedule(10, s.Fire)
	// Waiter arrives after the fire: must not block.
	k.Go("late", func(p *Proc) {
		p.Sleep(20)
		p.Wait(s)
		woke = append(woke, p.Now())
	})
	k.Run()
	if len(woke) != 1 || woke[0] != 20 {
		t.Fatalf("woke = %v, want [20]", woke)
	}
	if !s.Set() {
		t.Error("latched signal not set after Fire")
	}
	s.Reset()
	if s.Set() {
		t.Error("latched signal still set after Reset")
	}
}

func TestWaitAny(t *testing.T) {
	k := NewKernel()
	a := NewSignal(k, "a")
	b := NewSignal(k, "b")
	var idx int
	var at Time
	k.Go("waiter", func(p *Proc) {
		idx = p.WaitAny(a, b)
		at = p.Now()
	})
	k.Schedule(30, b.Fire)
	k.Schedule(60, a.Fire)
	k.Run()
	if idx != 1 || at != 30 {
		t.Fatalf("WaitAny -> (%d, %d), want (1, 30)", idx, at)
	}
}

func TestWaitAnyLatchedImmediate(t *testing.T) {
	k := NewKernel()
	a := NewLatchedSignal(k, "a")
	a.Fire()
	b := NewSignal(k, "b")
	var idx int
	k.Go("waiter", func(p *Proc) { idx = p.WaitAny(b, a) })
	k.Run()
	if idx != 1 {
		t.Fatalf("WaitAny = %d, want 1 (latched)", idx)
	}
}

func TestResourceFIFO(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "ddr")
	var order []string
	use := func(name string, hold Time) {
		k.Go(name, func(p *Proc) {
			r.Acquire(p)
			order = append(order, name+"+")
			p.Sleep(hold)
			order = append(order, name+"-")
			r.Release()
		})
	}
	use("a", 10)
	use("b", 10)
	use("c", 10)
	k.Run()
	want := []string{"a+", "a-", "b+", "b-", "c+", "c-"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if r.Busy() {
		t.Error("resource still busy after all releases")
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "x")
	defer func() {
		if recover() == nil {
			t.Fatal("Release of idle resource did not panic")
		}
	}()
	r.Release()
}

func TestUnits(t *testing.T) {
	if got := Micros(100); got != 1.0 {
		t.Errorf("Micros(100) = %v, want 1.0", got)
	}
	if got := Millis(100_000); got != 1.0 {
		t.Errorf("Millis(1e5) = %v, want 1.0", got)
	}
	if got := FromMicros(18); got != 1800 {
		t.Errorf("FromMicros(18) = %v, want 1800", got)
	}
	// 4 bytes per cycle at 100 MHz = 400 MB/s (the ICAP ceiling).
	if got := MBPerSec(4, 1); got != 400 {
		t.Errorf("MBPerSec(4,1) = %v, want 400", got)
	}
	if got := MBPerSec(100, 0); got != 0 {
		t.Errorf("MBPerSec(n,0) = %v, want 0", got)
	}
}

func TestMicrosFromMicrosRoundTrip(t *testing.T) {
	f := func(us uint16) bool {
		c := FromMicros(float64(us))
		return Micros(c) == float64(us)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEventStormDeterminism(t *testing.T) {
	// Many events at identical timestamps must fire in scheduling order.
	k := NewKernel()
	var got []int
	for i := 0; i < 1000; i++ {
		i := i
		k.Schedule(7, func() { got = append(got, i) })
	}
	k.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("event %d fired out of order (got %d)", i, got[i])
		}
	}
}

package sim

import (
	"fmt"
	"runtime/debug"
)

// PanicError wraps a panic that escaped a simulation process. The kernel
// re-panics with it from dispatch so the crash surfaces on the caller's
// stack, but the original panic value and the goroutine stack where it
// happened are preserved for diagnosis instead of being flattened into a
// string.
type PanicError struct {
	// Proc is the name of the process whose function panicked.
	Proc string
	// Value is the original value passed to panic.
	Value interface{}
	// Stack is the process goroutine's stack captured at recover time,
	// pointing at the panic site rather than at dispatch.
	Stack []byte
}

// Error formats the failure with the originating process and panic value.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v", e.Proc, e.Value)
}

// Unwrap exposes the original panic value when it was itself an error,
// so errors.Is/As work through the wrapper.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Proc is a cooperative simulation process: a goroutine that runs device
// engines or software drivers as ordinary sequential code, interleaved
// deterministically with the event queue. Exactly one of {kernel, some
// process} executes at any moment; control transfers are synchronous
// channel handoffs, so the simulation stays single-threaded in effect and
// fully reproducible.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	yield  chan struct{}
	done   bool
	panicv *PanicError
}

// Go starts fn as a simulation process. fn begins executing at the
// current cycle (after pending same-cycle events). The returned Proc can
// be waited on via its Done signal semantics through Join.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				p.panicv = &PanicError{Proc: p.name, Value: r, Stack: debug.Stack()}
			}
			p.done = true
			p.yield <- struct{}{}
		}()
		fn(p)
	}()
	k.Schedule(0, func() { k.dispatch(p) })
	return p
}

// dispatch hands control to p until it yields or finishes.
func (k *Kernel) dispatch(p *Proc) {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-p.yield
	if p.panicv != nil {
		panic(p.panicv)
	}
}

// pause yields control back to the kernel until something re-dispatches p.
func (p *Proc) pause() {
	p.yield <- struct{}{}
	<-p.resume
}

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulated cycle.
func (p *Proc) Now() Time { return p.k.now }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// Sleep suspends the process for d cycles of simulated time.
func (p *Proc) Sleep(d Time) {
	if d == 0 {
		// Still yield so same-cycle events interleave fairly.
		p.k.Schedule(0, func() { p.k.dispatch(p) })
		p.pause()
		return
	}
	p.k.Schedule(d, func() { p.k.dispatch(p) })
	p.pause()
}

// Wait suspends the process until s fires. If s has already latched (see
// Signal.Latch), Wait returns immediately without yielding time.
func (p *Proc) Wait(s *Signal) {
	if s.latched {
		return
	}
	s.subscribe(func() { p.k.dispatch(p) })
	p.pause()
}

// WaitAny suspends until any one of the given signals fires and returns
// its index. Latched signals win immediately (lowest index first).
func (p *Proc) WaitAny(sigs ...*Signal) int {
	for i, s := range sigs {
		if s.latched {
			return i
		}
	}
	fired := -1
	for i, s := range sigs {
		i := i
		s.subscribe(func() {
			if fired >= 0 {
				return // another signal already woke us
			}
			fired = i
			p.k.dispatch(p)
		})
	}
	p.pause()
	return fired
}

// Join suspends the calling process until other finishes.
func (p *Proc) Join(other *Proc, done *Signal) {
	for !other.done {
		p.Wait(done)
	}
}

// Signal is a broadcast wake-up: processes Wait on it, Fire wakes all
// current waiters. With Latch set, a fired signal stays "on" so that
// late waiters return immediately (completion semantics); Reset rearms it.
type Signal struct {
	k       *Kernel
	name    string
	waiters []func()
	latched bool
	latch   bool
}

// NewSignal returns a pulse-style signal: Fire wakes current waiters only.
func NewSignal(k *Kernel, name string) *Signal {
	return &Signal{k: k, name: name}
}

// NewLatchedSignal returns a completion-style signal: once fired it stays
// set until Reset, and waiters arriving after Fire do not block.
func NewLatchedSignal(k *Kernel, name string) *Signal {
	return &Signal{k: k, name: name, latch: true}
}

func (s *Signal) subscribe(fn func()) { s.waiters = append(s.waiters, fn) }

// Fire wakes every current waiter (each as a fresh same-cycle event) and,
// for latched signals, sets the latch.
func (s *Signal) Fire() {
	if s.latch {
		s.latched = true
	}
	w := s.waiters
	s.waiters = nil
	for _, fn := range w {
		s.k.Schedule(0, fn)
	}
}

// Set reports whether a latched signal is currently set.
func (s *Signal) Set() bool { return s.latched }

// Reset rearms a latched signal.
func (s *Signal) Reset() { s.latched = false }

// Resource is a FIFO-fair exclusive resource (e.g. the DDR port or a bus
// grant). Acquire blocks the calling process until the resource is free.
type Resource struct {
	k     *Kernel
	name  string
	busy  bool
	queue []func()
}

// NewResource returns an idle resource.
func NewResource(k *Kernel, name string) *Resource {
	return &Resource{k: k, name: name}
}

// Acquire takes the resource, blocking the process in FIFO order while it
// is held elsewhere.
func (r *Resource) Acquire(p *Proc) {
	if !r.busy {
		r.busy = true
		return
	}
	r.queue = append(r.queue, func() { p.k.dispatch(p) })
	p.pause()
	// Ownership was transferred to us by Release before the wake-up.
}

// Release frees the resource, handing it to the oldest waiter if any.
func (r *Resource) Release() {
	if !r.busy {
		panic("sim: Release of idle resource " + r.name)
	}
	if len(r.queue) == 0 {
		r.busy = false
		return
	}
	next := r.queue[0]
	r.queue = r.queue[1:]
	// Stay busy: the waiter inherits ownership.
	r.k.Schedule(0, next)
}

// Busy reports whether the resource is currently held.
func (r *Resource) Busy() bool { return r.busy }

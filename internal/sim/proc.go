package sim

import (
	"fmt"
	"iter"
	"runtime"
	"runtime/debug"
)

// PanicError wraps a panic that escaped a simulation process. The kernel
// re-panics with it from dispatch so the crash surfaces on the caller's
// stack, but the original panic value and the goroutine stack where it
// happened are preserved for diagnosis instead of being flattened into a
// string.
type PanicError struct {
	// Proc is the name of the process whose function panicked.
	Proc string
	// Value is the original value passed to panic.
	Value interface{}
	// Stack is the process goroutine's stack captured at recover time,
	// pointing at the panic site rather than at dispatch.
	Stack []byte
}

// Error formats the failure with the originating process and panic value.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v", e.Proc, e.Value)
}

// Unwrap exposes the original panic value when it was itself an error,
// so errors.Is/As work through the wrapper.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Proc is a cooperative simulation process: a coroutine that runs device
// engines or software drivers as ordinary sequential code, interleaved
// deterministically with the event queue. Exactly one of {kernel, some
// process} executes at any moment; control transfers are direct
// coroutine switches (iter.Pull's runtime coroswitch), which hand
// control goroutine-to-goroutine without a trip through the Go
// scheduler — several times cheaper than the channel ping-pong they
// replace — so the simulation stays single-threaded in effect and fully
// reproducible.
type Proc struct {
	k      *Kernel
	name   string
	next   func() (struct{}, bool)
	yield  func(struct{}) bool
	done   bool
	panicv *PanicError

	// waitGen invalidates signal subscriptions: a waiter whose recorded
	// generation no longer matches is stale (its process was already
	// woken by another signal or is past that wait) and is skipped by
	// Fire. It is bumped on every signal wake-up.
	waitGen uint64
	// wake records which signal won a Wait/WaitAny, so WaitAny can
	// return the index without allocating a closure per subscription.
	wake *Signal

	// Scratch is a per-process buffer for leaf transaction helpers
	// (axi.ReadU32 and friends): a blocking bus call's staging buffer is
	// live exactly for the call, and a process runs one blocking call at
	// a time, so sharing the array is safe and spares a heap escape per
	// register access (the slave interface makes a stack array escape).
	Scratch [8]byte
}

// Go starts fn as a simulation process. fn begins executing at the
// current cycle (after pending same-cycle events). The returned Proc can
// be waited on via its Done signal semantics through Join.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name}
	p.next, _ = iter.Pull(func(yield func(struct{}) bool) {
		p.yield = yield
		defer func() {
			if r := recover(); r != nil {
				p.panicv = &PanicError{Proc: p.name, Value: r, Stack: debug.Stack()}
			}
			p.done = true
		}()
		fn(p)
	})
	k.push(k.now, entry{proc: p})
	return p
}

// dispatch hands control to p until it yields or finishes.
func (k *Kernel) dispatch(p *Proc) {
	if p.done {
		return
	}
	p.next()
	if p.panicv != nil {
		panic(p.panicv)
	}
}

// pause yields control back to the kernel until something re-dispatches p.
func (p *Proc) pause() {
	if !p.yield(struct{}{}) {
		// The pull was stopped out from under us; nothing will ever
		// resume this process, so unwind its goroutine.
		runtime.Goexit()
	}
}

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulated cycle.
func (p *Proc) Now() Time { return p.k.now }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// Sleep suspends the process for d cycles of simulated time. A zero
// delay still yields so same-cycle events interleave fairly.
func (p *Proc) Sleep(d Time) {
	p.k.push(p.k.now+d, entry{proc: p})
	p.pause()
}

// Wait suspends the process until s fires. If s has already latched (see
// Signal.Latch), Wait returns immediately without yielding time.
func (p *Proc) Wait(s *Signal) {
	if s.latched {
		return
	}
	s.waiters = append(s.waiters, waiter{p: p, gen: p.waitGen})
	p.pause()
}

// WaitAny suspends until any one of the given signals fires and returns
// its index. Latched signals win immediately (lowest index first).
//
// On wake-up the losing signals' subscriptions are swept immediately:
// without the sweep a polling loop (WaitAny in a for loop, as the
// scheduler's partition workers do) grows every non-firing signal's
// waiter list without bound.
func (p *Proc) WaitAny(sigs ...*Signal) int {
	for i, s := range sigs {
		if s.latched {
			return i
		}
	}
	gen := p.waitGen
	for _, s := range sigs {
		s.waiters = append(s.waiters, waiter{p: p, gen: gen})
	}
	p.pause()
	winner := p.wake
	p.wake = nil
	idx := -1
	for i, s := range sigs {
		if s == winner && idx < 0 {
			// The winner cleared its whole list when it fired.
			idx = i
			continue
		}
		s.sweep(p, gen)
	}
	return idx
}

// Join suspends the calling process until other finishes.
func (p *Proc) Join(other *Proc, done *Signal) {
	for !other.done {
		p.Wait(done)
	}
}

// waiter is one subscription on a Signal: either a process (Wait /
// WaitAny) or a continuation callback (OnFire). Storing the process and
// its wait generation (instead of a per-call closure) keeps Wait/WaitAny
// and Fire allocation-free on the steady state and lets Fire detect
// stale WaitAny subscriptions without running them. Proc and callback
// subscriptions share one FIFO list, so a mixed population wakes in
// exact subscription order.
type waiter struct {
	p   *Proc
	gen uint64
	fn  func()
}

// Signal is a broadcast wake-up: processes Wait on it, Fire wakes all
// current waiters. With Latch set, a fired signal stays "on" so that
// late waiters return immediately (completion semantics); Reset rearms it.
type Signal struct {
	k       *Kernel
	name    string
	waiters []waiter
	latched bool
	latch   bool
}

// NewSignal returns a pulse-style signal: Fire wakes current waiters only.
func NewSignal(k *Kernel, name string) *Signal {
	return &Signal{k: k, name: name}
}

// NewLatchedSignal returns a completion-style signal: once fired it stays
// set until Reset, and waiters arriving after Fire do not block.
func NewLatchedSignal(k *Kernel, name string) *Signal {
	return &Signal{k: k, name: name, latch: true}
}

// sweep removes p's subscription with the given generation, preserving
// the order of the remaining waiters.
func (s *Signal) sweep(p *Proc, gen uint64) {
	for i, w := range s.waiters {
		if w.p == p && w.gen == gen {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

// OnFire subscribes a one-shot continuation: fn is scheduled as a fresh
// same-cycle event when the signal next fires, at the exact queue
// position a process parked in Wait would have woken at. If the signal
// is already latched, fn runs synchronously — mirroring Wait's
// immediate return. This is the callback half of the continuation-style
// device engines: a state machine resumes where a coroutine would have
// been re-dispatched, with identical cycle accounting.
func (s *Signal) OnFire(fn func()) {
	if s.latched {
		fn()
		return
	}
	s.waiters = append(s.waiters, waiter{fn: fn})
}

// Fire wakes every current waiter (each as a fresh same-cycle event) and,
// for latched signals, sets the latch. Stale subscriptions — waiters
// whose process was already woken by another signal of a WaitAny set —
// are dropped without scheduling anything.
func (s *Signal) Fire() {
	if s.latch {
		s.latched = true
	}
	ws := s.waiters
	s.waiters = s.waiters[:0]
	for _, w := range ws {
		if w.p == nil {
			s.k.push(s.k.now, entry{fn: w.fn})
			continue
		}
		if w.gen != w.p.waitGen {
			continue
		}
		w.p.waitGen++
		w.p.wake = s
		s.k.push(s.k.now, entry{proc: w.p})
	}
}

// Set reports whether a latched signal is currently set.
func (s *Signal) Set() bool { return s.latched }

// Reset rearms a latched signal.
func (s *Signal) Reset() { s.latched = false }

// resWaiter is one queued grant request: a parked process or a
// continuation callback. Both kinds share the FIFO so grant order is
// strictly arrival order regardless of caller style.
type resWaiter struct {
	p  *Proc
	fn func()
}

// Resource is a FIFO-fair exclusive resource (e.g. the DDR port or a bus
// grant). Acquire blocks the calling process until the resource is free.
type Resource struct {
	k     *Kernel
	name  string
	busy  bool
	queue []resWaiter
}

// NewResource returns an idle resource.
func NewResource(k *Kernel, name string) *Resource {
	return &Resource{k: k, name: name}
}

// Acquire takes the resource, blocking the process in FIFO order while it
// is held elsewhere.
func (r *Resource) Acquire(p *Proc) {
	if !r.busy {
		r.busy = true
		return
	}
	r.queue = append(r.queue, resWaiter{p: p})
	p.pause()
	// Ownership was transferred to us by Release before the wake-up.
}

// AcquireAsync takes the resource for a continuation-style caller: fn
// runs with ownership held. A free resource grants synchronously
// (matching Acquire's no-yield fast path); a busy one queues fn in the
// same FIFO as process waiters, and Release schedules it as a fresh
// same-cycle event exactly where the process wake would have landed.
func (r *Resource) AcquireAsync(fn func()) {
	if !r.busy {
		r.busy = true
		fn()
		return
	}
	r.queue = append(r.queue, resWaiter{fn: fn})
}

// Release frees the resource, handing it to the oldest waiter if any.
func (r *Resource) Release() {
	if !r.busy {
		panic("sim: Release of idle resource " + r.name)
	}
	if len(r.queue) == 0 {
		r.busy = false
		return
	}
	next := r.queue[0]
	copy(r.queue, r.queue[1:])
	r.queue = r.queue[:len(r.queue)-1]
	// Stay busy: the waiter inherits ownership.
	if next.p != nil {
		r.k.push(r.k.now, entry{proc: next.p})
	} else {
		r.k.push(r.k.now, entry{fn: next.fn})
	}
}

// Busy reports whether the resource is currently held.
func (r *Resource) Busy() bool { return r.busy }

package sim

import (
	"math"
	"math/rand"
	"testing"
)

// TestFromMicrosCycleBoundaries pins the rounding contract: any µs value
// that is itself a whole number of cycles must round-trip exactly
// through FromMicros/Micros. Under the old truncating conversion,
// 0.29 µs * 100 floats to 28.999999999999996 and came back as 28
// cycles — one cycle short.
func TestFromMicrosCycleBoundaries(t *testing.T) {
	for k := 0; k <= 100_000; k++ {
		us := float64(k) / CyclesPerMicrosecond // exactly k cycles
		if got := FromMicros(us); got != Time(k) {
			t.Fatalf("FromMicros(%v) = %d cycles, want %d", us, got, k)
		}
	}
	// The motivating case from the workload generator's range.
	if got := FromMicros(0.29); got != 29 {
		t.Errorf("FromMicros(0.29) = %d, want 29", got)
	}
}

// TestFromMicrosGeneratorRange is a property test over the µs range the
// sched/cluster workload generators actually produce (arrival clocks up
// to seconds, service times of tens to hundreds of µs, both with full
// float fractions): the conversion must stay within half a cycle of the
// exact value and must be monotone, so sorting jobs by float µs and by
// converted cycles agree.
func TestFromMicrosGeneratorRange(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 200_000; i++ {
		// Mix of magnitudes: sub-µs jitter up to multi-second clocks.
		us := r.Float64() * math.Pow(10, float64(r.Intn(7)))
		c := FromMicros(us)
		if diff := math.Abs(float64(c) - us*CyclesPerMicrosecond); diff > 0.5 {
			t.Fatalf("FromMicros(%v) = %d cycles, off by %v cycles", us, c, diff)
		}
		// Micros is exact for cycle counts this small (< 2^53).
		if back := Micros(c); math.Abs(back-us) > 0.5/CyclesPerMicrosecond {
			t.Fatalf("Micros(FromMicros(%v)) = %v, drifted more than half a cycle", us, back)
		}
	}
	// Explicit monotonicity sweep on an ordered grid.
	last := Time(0)
	for i := 0; i < 100_000; i++ {
		us := float64(i) * 0.0137
		c := FromMicros(us)
		if c < last {
			t.Fatalf("FromMicros not monotone: FromMicros(%v) = %d < %d", us, c, last)
		}
		last = c
	}
}

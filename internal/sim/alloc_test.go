package sim

import "testing"

// The steady-state allocation contract of the kernel primitives: after
// a warm-up pass grows the backing arrays, the hot paths — calendar
// enqueue (near, same-cycle, and far), Signal.OnFire re-arm, and the
// fire/dispatch loop — must not allocate. BENCH_8/BENCH_9's allocs/op
// ceilings lean directly on these invariants.

// TestCalendarEnqueueZeroAlloc covers all three Schedule paths: a
// same-cycle event (bucket append), a small in-window delay, and a
// beyond-window delay that takes the far heap and migrates back.
func TestCalendarEnqueueZeroAlloc(t *testing.T) {
	k := NewKernel(WithQueue(CalendarQueue))
	fn := func() {}
	round := func() {
		k.Schedule(0, fn)            // same cycle
		k.Schedule(7, fn)            // in-window
		k.Schedule(ringSize+100, fn) // far heap, migrates back
		k.Run()
	}
	round() // warm the bucket and far-heap backing arrays
	if n := testing.AllocsPerRun(200, round); n != 0 {
		t.Fatalf("calendar enqueue+run allocates %.1f allocs per round, want 0", n)
	}
}

// TestOnFireRearmZeroAlloc re-arms a pre-bound continuation on a pulse
// signal across many fire cycles — the Stream/ICAP resume pattern. The
// subscription append, the Fire sweep, and the same-cycle dispatch must
// all reuse their backing arrays.
func TestOnFireRearmZeroAlloc(t *testing.T) {
	k := NewKernel(WithQueue(CalendarQueue))
	sig := NewSignal(k, "rearm")
	fires := 0
	fn := func() { fires++ }
	round := func() {
		sig.OnFire(fn)
		sig.Fire()
		k.Run()
	}
	round() // warm-up
	if n := testing.AllocsPerRun(200, round); n != 0 {
		t.Fatalf("OnFire re-arm allocates %.1f allocs per round, want 0", n)
	}
	if fires == 0 {
		t.Fatal("continuation never ran")
	}
}

// TestWaitRearmZeroAlloc is the process-side twin: a Proc parked in
// Wait is woken by Fire without a per-wake closure or boxed event.
func TestWaitRearmZeroAlloc(t *testing.T) {
	k := NewKernel(WithQueue(CalendarQueue))
	sig := NewSignal(k, "wait")
	wakes := 0
	k.Go("waiter", func(p *Proc) {
		for {
			p.Wait(sig)
			wakes++
		}
	})
	k.Run() // park the process
	round := func() {
		sig.Fire()
		k.Run()
	}
	round() // warm-up
	if n := testing.AllocsPerRun(200, round); n != 0 {
		t.Fatalf("Wait/Fire wake allocates %.1f allocs per round, want 0", n)
	}
	if wakes == 0 {
		t.Fatal("waiter never woke")
	}
}

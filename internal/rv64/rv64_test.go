package rv64

import (
	"strings"
	"testing"

	"rvcap/internal/axi"
	"rvcap/internal/mem"
	"rvcap/internal/rvasm"
	"rvcap/internal/sim"
)

const ramBase = 0x8000_0000

// rig assembles src and runs it to completion (ebreak) against a bus
// with RAM at ramBase.
type rig struct {
	k   *sim.Kernel
	cpu *CPU
	ram *mem.DDR
}

func run(t *testing.T, src string) *rig {
	t.Helper()
	prog, err := rvasm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	k := sim.NewKernel()
	ram := mem.NewDDR(k, 1<<20)
	bus := axi.NewCrossbar(k, "bus")
	bus.Map("ram", ramBase, 1<<20, ram)
	cpu := New(k, Config{
		Bus:             bus,
		BootImage:       prog.Code,
		BootBase:        prog.Base,
		PC:              prog.Entry,
		CachedWindows:   []CachedWindow{{Base: ramBase, Size: 1 << 20, Mem: ram}},
		MaxInstructions: 1_000_000,
	})
	cpu.Start()
	k.Run()
	if !cpu.Halted() {
		t.Fatal("program did not halt")
	}
	return &rig{k: k, cpu: cpu, ram: ram}
}

// expectOK runs src and fails on CPU faults.
func expectOK(t *testing.T, src string) *rig {
	t.Helper()
	r := run(t, src)
	if err := r.cpu.Err(); err != nil {
		t.Fatalf("cpu fault: %v", err)
	}
	return r
}

func TestArithmeticBasics(t *testing.T) {
	r := expectOK(t, `
_start:
    li a0, 40
    li a1, 2
    add a2, a0, a1      # 42
    sub a3, a0, a1      # 38
    slli a4, a1, 4      # 32
    xor a5, a0, a1      # 42
    or  s2, a0, a1      # 42
    and s3, a0, a1      # 0
    sltiu s4, a1, 3     # 1
    ebreak
`)
	want := map[int]uint64{12: 42, 13: 38, 14: 32, 15: 42, 18: 42, 19: 0, 20: 1}
	for reg, v := range want {
		if got := r.cpu.Reg(reg); got != v {
			t.Errorf("x%d = %d, want %d", reg, got, v)
		}
	}
}

func TestWordOpsSignExtend(t *testing.T) {
	r := expectOK(t, `
_start:
    li a0, 0x7FFFFFFF
    addiw a1, a0, 1       # -2^31 sign-extended
    li a2, 1
    subw a3, x0, a2       # -1
    li a4, 0xFFFFFFFF
    sext.w a5, a4         # -1
    srliw s2, a4, 4       # 0x0FFFFFFF
    sraiw s3, a4, 4       # -1
    ebreak
`)
	if got := r.cpu.Reg(11); got != 0xFFFFFFFF80000000 {
		t.Errorf("addiw overflow = %#x", got)
	}
	if got := r.cpu.Reg(13); got != ^uint64(0) {
		t.Errorf("subw = %#x", got)
	}
	if got := r.cpu.Reg(15); got != ^uint64(0) {
		t.Errorf("sext.w = %#x", got)
	}
	if got := r.cpu.Reg(18); got != 0x0FFFFFFF {
		t.Errorf("srliw = %#x", got)
	}
	if got := r.cpu.Reg(19); got != ^uint64(0) {
		t.Errorf("sraiw = %#x", got)
	}
}

func TestLoopSum(t *testing.T) {
	r := expectOK(t, `
_start:
    li a0, 0      # sum
    li a1, 1      # i
    li a2, 11
loop:
    add a0, a0, a1
    addi a1, a1, 1
    blt a1, a2, loop
    ebreak
`)
	if got := r.cpu.Reg(10); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestMemoryAccessSizes(t *testing.T) {
	r := expectOK(t, `
.equ RAM, 0x80000000
_start:
    li s0, RAM
    li a0, 0x1122334455667788
    sd a0, 0(s0)
    ld a1, 0(s0)
    lw a2, 0(s0)        # sign-extended 0x55667788
    lwu a3, 0(s0)
    lh a4, 6(s0)        # 0x1122
    lhu a5, 0(s0)       # 0x7788
    lb s2, 7(s0)        # 0x11
    lbu s3, 3(s0)       # 0x55
    li a6, -1
    sw a6, 8(s0)
    lwu s4, 8(s0)       # 0xFFFFFFFF
    sb a6, 16(s0)
    lbu s5, 16(s0)      # 0xFF
    sh a6, 24(s0)
    lhu s6, 24(s0)      # 0xFFFF
    ebreak
`)
	checks := map[int]uint64{
		11: 0x1122334455667788,
		12: 0x55667788,
		13: 0x55667788,
		14: 0x1122,
		15: 0x7788,
		18: 0x11,
		19: 0x55,
		20: 0xFFFFFFFF,
		21: 0xFF,
		22: 0xFFFF,
	}
	for reg, v := range checks {
		if got := r.cpu.Reg(reg); got != v {
			t.Errorf("x%d = %#x, want %#x", reg, got, v)
		}
	}
}

func TestSignedLoadNegative(t *testing.T) {
	r := expectOK(t, `
.equ RAM, 0x80000000
_start:
    li s0, RAM
    li a0, -2
    sw a0, 0(s0)
    lw a1, 0(s0)
    lh a2, 0(s0)
    lb a3, 0(s0)
    ebreak
`)
	if r.cpu.Reg(11) != ^uint64(1) || r.cpu.Reg(12) != ^uint64(1) || r.cpu.Reg(13) != ^uint64(1) {
		t.Errorf("signed loads: %#x %#x %#x", r.cpu.Reg(11), r.cpu.Reg(12), r.cpu.Reg(13))
	}
}

func TestMExtension(t *testing.T) {
	r := expectOK(t, `
_start:
    li a0, -7
    li a1, 3
    mul a2, a0, a1      # -21
    div a3, a0, a1      # -2
    rem a4, a0, a1      # -1
    divu a5, a0, a1     # huge
    li s0, 0
    div s1, a0, s0      # div by zero -> -1
    rem s2, a0, s0      # rem by zero -> a0
    li s3, 0x100000000
    mulhu s4, s3, s3    # 1
    li s5, -1
    mulh s6, s5, s5     # 0 ((-1)*(-1) high = 0)
    ebreak
`)
	if got := int64(r.cpu.Reg(12)); got != -21 {
		t.Errorf("mul = %d", got)
	}
	if got := int64(r.cpu.Reg(13)); got != -2 {
		t.Errorf("div = %d", got)
	}
	if got := int64(r.cpu.Reg(14)); got != -1 {
		t.Errorf("rem = %d", got)
	}
	if got := r.cpu.Reg(9); got != ^uint64(0) {
		t.Errorf("div/0 = %#x", got)
	}
	if got := int64(r.cpu.Reg(18)); got != -7 {
		t.Errorf("rem/0 = %d", got)
	}
	if got := r.cpu.Reg(20); got != 1 {
		t.Errorf("mulhu = %d", got)
	}
	if got := r.cpu.Reg(22); got != 0 {
		t.Errorf("mulh(-1,-1) = %#x", got)
	}
}

func TestDivOverflow(t *testing.T) {
	r := expectOK(t, `
_start:
    li a0, 1
    slli a0, a0, 63     # INT64_MIN
    li a1, -1
    div a2, a0, a1      # INT64_MIN
    rem a3, a0, a1      # 0
    ebreak
`)
	if got := r.cpu.Reg(12); got != 1<<63 {
		t.Errorf("div overflow = %#x", got)
	}
	if got := r.cpu.Reg(13); got != 0 {
		t.Errorf("rem overflow = %d", got)
	}
}

func TestFunctionCallRet(t *testing.T) {
	r := expectOK(t, `
_start:
    li a0, 20
    call double
    call double
    ebreak
double:
    slli a0, a0, 1
    ret
`)
	if got := r.cpu.Reg(10); got != 80 {
		t.Errorf("a0 = %d, want 80", got)
	}
}

func TestLiWideConstants(t *testing.T) {
	r := expectOK(t, `
_start:
    li a0, 0x123456789ABCDEF0
    li a1, -1
    li a2, 0x80000000
    li a3, 0xFFFFFFFF
    ebreak
`)
	if got := r.cpu.Reg(10); got != 0x123456789ABCDEF0 {
		t.Errorf("64-bit li = %#x", got)
	}
	if got := r.cpu.Reg(11); got != ^uint64(0) {
		t.Errorf("li -1 = %#x", got)
	}
	if got := r.cpu.Reg(12); got != 0x80000000 {
		t.Errorf("li 0x80000000 = %#x", got)
	}
	if got := r.cpu.Reg(13); got != 0xFFFFFFFF {
		t.Errorf("li 0xFFFFFFFF = %#x", got)
	}
}

func TestLaAndDataAccess(t *testing.T) {
	r := expectOK(t, `
_start:
    la a0, value
    # the boot image is fetch-only; copy the address itself instead
    la a1, value
    sub a2, a1, a0        # 0
    ebreak
value:
.dword 0xCAFEBABE
`)
	if got := r.cpu.Reg(12); got != 0 {
		t.Errorf("la twice differs by %d", got)
	}
	if r.cpu.Reg(10) == 0 {
		t.Error("la produced 0")
	}
}

func TestCSRAccess(t *testing.T) {
	r := expectOK(t, `
_start:
    li t0, 0x1800
    csrw mscratch, t0
    csrr a0, mscratch
    csrrsi a1, mscratch, 3   # returns old, sets low bits
    csrr a2, mscratch
    csrr a3, mhartid
    csrr a4, minstret
    ebreak
`)
	if got := r.cpu.Reg(10); got != 0x1800 {
		t.Errorf("mscratch = %#x", got)
	}
	if got := r.cpu.Reg(11); got != 0x1800 {
		t.Errorf("csrrsi old = %#x", got)
	}
	if got := r.cpu.Reg(12); got != 0x1803 {
		t.Errorf("mscratch after set = %#x", got)
	}
	if got := r.cpu.Reg(13); got != 0 {
		t.Errorf("mhartid = %d", got)
	}
	if got := r.cpu.Reg(14); got == 0 {
		t.Error("minstret = 0")
	}
}

func TestECallTrapsAndMret(t *testing.T) {
	r := expectOK(t, `
_start:
    la t0, handler
    csrw mtvec, t0
    li a0, 0
    ecall               # -> handler, which sets a0 = 99 and returns
    addi a0, a0, 1      # 100
    ebreak
handler:
    li a0, 99
    csrr t1, mepc
    addi t1, t1, 4
    csrw mepc, t1
    mret
`)
	if got := r.cpu.Reg(10); got != 100 {
		t.Errorf("a0 = %d, want 100", got)
	}
}

func TestTimerInterruptAndWFI(t *testing.T) {
	prog, err := rvasm.Assemble(`
_start:
    la t0, handler
    csrw mtvec, t0
    li t1, 0x80         # MTIE
    csrw mie, t1
    csrrsi x0, mstatus, 8  # MIE
    li a0, 0
wait:
    wfi
    beqz a0, wait
    ebreak
handler:
    li a0, 1
    csrrci x0, mie, 0   # keep enabled; clear via platform below
    csrr t2, mcause
    mret
`)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	ram := mem.NewDDR(k, 1<<16)
	bus := axi.NewCrossbar(k, "bus")
	bus.Map("ram", ramBase, 1<<16, ram)
	cpu := New(k, Config{
		Bus: bus, BootImage: prog.Code, BootBase: prog.Base, PC: prog.Entry,
		CachedWindows:   []CachedWindow{{Base: ramBase, Size: 1 << 16, Mem: ram}},
		MaxInstructions: 100000,
	})
	cpu.Start()
	// Fire the timer interrupt at cycle 5000, drop it shortly after.
	k.Schedule(5000, func() { cpu.SetIRQ(MTIP, true) })
	k.Schedule(5200, func() { cpu.SetIRQ(MTIP, false) })
	k.Run()
	if !cpu.Halted() || cpu.Err() != nil {
		t.Fatalf("halted=%v err=%v", cpu.Halted(), cpu.Err())
	}
	if got := cpu.Reg(10); got != 1 {
		t.Errorf("handler flag = %d", got)
	}
	if k.Now() < 5000 {
		t.Errorf("finished at cycle %d, before the interrupt", k.Now())
	}
}

func TestIllegalInstructionFaults(t *testing.T) {
	r := run(t, "_start: .word 0xFFFFFFFF\n")
	if r.cpu.Err() == nil || !strings.Contains(r.cpu.Err().Error(), "illegal") {
		t.Errorf("err = %v", r.cpu.Err())
	}
}

func TestMisalignedStoreTraps(t *testing.T) {
	// Without a handler, the trap vectors to mtvec=0 which re-faults on
	// fetch of data there... use a handler that halts.
	r := run(t, `
_start:
    la t0, handler
    csrw mtvec, t0
    li s0, 0x80000001
    sw a0, 0(s0)
    ebreak
handler:
    csrr a0, mcause
    ebreak
`)
	if r.cpu.Err() != nil {
		t.Fatalf("fault: %v", r.cpu.Err())
	}
	if got := r.cpu.Reg(10); got != causeMisalignedStore {
		t.Errorf("mcause = %d, want %d", got, causeMisalignedStore)
	}
}

func TestBusFaultTraps(t *testing.T) {
	r := run(t, `
_start:
    la t0, handler
    csrw mtvec, t0
    li s0, 0x40000000    # unmapped
    ld a1, 0(s0)
    ebreak
handler:
    csrr a0, mcause
    ebreak
`)
	if got := r.cpu.Reg(10); got != causeLoadAccess {
		t.Errorf("mcause = %d, want %d", got, causeLoadAccess)
	}
}

func TestHaltCodeIsA0(t *testing.T) {
	r := expectOK(t, "_start: li a0, 17\nebreak\n")
	if r.cpu.HaltCode() != 17 {
		t.Errorf("halt code = %d", r.cpu.HaltCode())
	}
}

func TestInstructionBudget(t *testing.T) {
	r := run(t, "_start: j _start\n")
	if r.cpu.Err() == nil || !strings.Contains(r.cpu.Err().Error(), "budget") {
		t.Errorf("err = %v", r.cpu.Err())
	}
}

func TestUncachedAccessCostsMore(t *testing.T) {
	// Two identical programs, one storing to RAM (cached window), one
	// to a device region; the device version must take much longer.
	src := func(addr string) string {
		return `
_start:
    li s0, ` + addr + `
    li t0, 100
loop:
    sw t0, 0(s0)
    addi t0, t0, -1
    bnez t0, loop
    ebreak
`
	}
	timeFor := func(devAddr string, mapDev bool) sim.Time {
		prog, err := rvasm.Assemble(src(devAddr))
		if err != nil {
			t.Fatal(err)
		}
		k := sim.NewKernel()
		bus := axi.NewCrossbar(k, "bus")
		ram := mem.NewDDR(k, 1<<16)
		bus.Map("ram", ramBase, 1<<16, ram)
		if mapDev {
			bus.Map("dev", 0x4000_0000, 0x1000, axi.NewRegFile("dev", 0x1000))
		}
		cpu := New(k, Config{
			Bus: bus, BootImage: prog.Code, BootBase: prog.Base, PC: prog.Entry,
			CachedWindows:   []CachedWindow{{Base: ramBase, Size: 1 << 16, Mem: ram}},
			MaxInstructions: 100000,
		})
		cpu.Start()
		k.Run()
		if cpu.Err() != nil {
			t.Fatal(cpu.Err())
		}
		return k.Now()
	}
	ramTime := timeFor("0x80000000", false)
	devTime := timeFor("0x40000000", true)
	// Device stores pay ~35 pipeline + bus, and the loop branch after
	// each store pays the ~51-cycle drain: ~90+ cycles/iteration versus
	// a handful for the cached version.
	if devTime < ramTime*8 {
		t.Errorf("device loop %d cycles vs ram loop %d: uncached penalty missing", devTime, ramTime)
	}
	perIter := float64(devTime) / 100
	if perIter < 80 || perIter > 130 {
		t.Errorf("device loop = %.1f cycles/iter, want ~90-100 (Ariane model)", perIter)
	}
}

func TestWordRegisterOps(t *testing.T) {
	r := expectOK(t, `
_start:
    li a0, 0x100000003    # truncates to 3 in W ops
    li a1, 5
    addw a2, a0, a1       # 8
    subw a3, a1, a0       # 2
    sllw a4, a1, a0       # 5<<3 = 40
    li t0, 0x80000000
    srlw a5, t0, a0       # logical: 0x10000000
    sraw s2, t0, a0       # arithmetic: sign-extended
    mulw s3, a0, a1       # 15
    divw s4, a1, a0       # 1
    divuw s5, a1, a0      # 1
    remw s6, a1, a0       # 2
    remuw s7, a1, a0      # 2
    li t1, 0
    divw s8, a1, t1       # -1
    remw s9, a1, t1       # 5
    mulhsu s10, a1, a0    # high of 5 * huge-unsigned: 0
    li t2, -1
    mulhsu s11, t2, t2    # (-1) * UINT64_MAX high = -1
    ebreak
`)
	checks := map[int]uint64{
		12: 8, 13: 2, 14: 40,
		15: 0x10000000,
		18: 0xFFFFFFFFF0000000,
		19: 15, 20: 1, 21: 1, 22: 2, 23: 2,
		24: ^uint64(0), 25: 5,
		26: 0,
		27: ^uint64(0),
	}
	for reg, v := range checks {
		if got := r.cpu.Reg(reg); got != v {
			t.Errorf("x%d = %#x, want %#x", reg, got, v)
		}
	}
}

func TestWordDivOverflowAndRemainders(t *testing.T) {
	r := expectOK(t, `
_start:
    li a0, 0x80000000     # INT32_MIN as a W operand
    li a1, -1
    divw a2, a0, a1       # INT32_MIN (sign-extended)
    remw a3, a0, a1       # 0
    li t0, 0
    divuw a4, a0, t0      # -1 (all ones)
    remuw a5, a0, t0      # sext32(a0)
    ebreak
`)
	if got := r.cpu.Reg(12); got != 0xFFFFFFFF80000000 {
		t.Errorf("divw overflow = %#x", got)
	}
	if got := r.cpu.Reg(13); got != 0 {
		t.Errorf("remw overflow = %#x", got)
	}
	if got := r.cpu.Reg(14); got != ^uint64(0) {
		t.Errorf("divuw/0 = %#x", got)
	}
	if got := r.cpu.Reg(15); got != 0xFFFFFFFF80000000 {
		t.Errorf("remuw/0 = %#x", got)
	}
}

func TestCPUAccessors(t *testing.T) {
	r := expectOK(t, "_start: li a0, 9\nebreak\n")
	if r.cpu.Instret() == 0 {
		t.Error("Instret = 0")
	}
	if !r.cpu.Done().Set() {
		t.Error("Done signal not latched")
	}
	if r.cpu.PC() == 0 {
		t.Error("PC = 0")
	}
	r.cpu.SetMaxInstructions(1) // no effect after halt, but exercised
}

func TestMulhSignedPairs(t *testing.T) {
	cases := []struct {
		a, b int64
		want uint64
	}{
		{-1, -1, 0},
		{-1, 1, ^uint64(0)},
		{1 << 62, 4, 1},
		{-(1 << 62), 4, ^uint64(0)},
		{0, 12345, 0},
	}
	for _, c := range cases {
		if got := mulhSigned(c.a, c.b); got != c.want {
			t.Errorf("mulhSigned(%d,%d) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
	if got := mulhSignedUnsigned(-1, 2); got != ^uint64(0) {
		t.Errorf("mulhSignedUnsigned(-1,2) = %#x", got)
	}
	if got := mulhSignedUnsigned(4, 1<<62); got != 1 {
		t.Errorf("mulhSignedUnsigned(4,2^62) = %#x", got)
	}
}

// Package rv64 is an RV64IM+Zicsr instruction-set simulator for the
// Ariane-class hart of the RV-CAP SoC. Where the soc.Hart timing model
// charges driver-level costs analytically, this package actually
// executes RISC-V machine code against the same simulated bus — the
// fully authentic version of "a set of software drivers ... to manage
// the DPR process via a programmable software environment from the
// RISC-V processor" (paper §I). The rv64run command and the rv64-bare
// example assemble bare-metal programs with internal/rvasm and run them
// here.
//
// Scope: RV64I, M, Zicsr, FENCE (as no-ops), WFI, MRET, machine mode
// only — what the paper's bare-metal C drivers compile to. Compressed
// (C) instructions, A-extension atomics and floating point are not
// implemented; the bundled assembler emits none of them. Instruction
// fetch models a perfect instruction cache over the boot image
// (self-modifying code is not supported).
package rv64

import (
	"fmt"

	"rvcap/internal/axi"
	"rvcap/internal/sim"
)

// Interrupt bit positions in mip/mie.
const (
	MSIP = 1 << 3  // machine software interrupt
	MTIP = 1 << 7  // machine timer interrupt
	MEIP = 1 << 11 // machine external interrupt
)

// mstatus bits.
const (
	mstatusMIE  = 1 << 3
	mstatusMPIE = 1 << 7
	mstatusMPP  = 3 << 11
)

// mcause values.
const (
	causeSoftIRQ           = 1<<63 | 3
	causeTimerIRQ          = 1<<63 | 7
	causeExternalIRQ       = 1<<63 | 11
	causeIllegal           = 2
	causeBreakpoint        = 3
	causeLoadAccess        = 5
	causeStoreAccess       = 7
	causeECallM            = 11
	causeMisalignedLoad    = 4
	causeMisalignedStore   = 6
	causeInstrAccessFault  = 1
	causeInstrAddrMisalign = 0
)

// Config sets up a CPU.
type Config struct {
	// Bus is the hart's memory view (the main crossbar).
	Bus axi.Slave
	// BootImage is the flat program image; BootBase its bus address.
	// Instruction fetch reads the image directly (perfect I$).
	BootImage []byte
	BootBase  uint64
	// PC is the reset program counter.
	PC uint64
	// CachedWindows lists address ranges treated as cached memory (DDR,
	// boot): accesses hit the write-through L1 model — they cost
	// CachedAccessCost and reach the backing store through its backdoor
	// rather than the bus (the store buffer hides the memory latency).
	// Everything else is a device access with uncached, non-speculative
	// semantics. The backdoor writes the same storage the DMA engines
	// read, so the system stays coherent.
	CachedWindows []CachedWindow
	// Timing (zero values take the calibrated Ariane defaults used by
	// soc.Hart).
	UncachedExtra      sim.Time // pipeline cost per uncached access
	PostUncachedBranch sim.Time // drain for a branch after an uncached access
	CachedAccessCost   sim.Time // cost of a cached load/store
	TrapEntryCost      sim.Time
	// MaxInstructions aborts runaway programs (0 = no limit).
	MaxInstructions uint64
}

// Backdoor is direct, zero-simulated-time access to a memory's backing
// store; mem.DDR and mem.BRAM implement it.
type Backdoor interface {
	Load(addr uint64, data []byte)
	Peek(addr uint64, n int) []byte
}

// CachedWindow declares one cached address range backed by Mem.
type CachedWindow struct {
	Base, Size uint64
	Mem        Backdoor
}

// CPU is one RV64 hart.
type CPU struct {
	cfg Config
	k   *sim.Kernel

	x  [32]uint64
	pc uint64

	// CSRs.
	mstatus  uint64
	mie      uint64
	mip      uint64
	mtvec    uint64
	mepc     uint64
	mcause   uint64
	mtval    uint64
	mscratch uint64
	minstret uint64

	halted      bool
	haltCode    uint64
	wfiWake     *sim.Signal
	doneSig     *sim.Signal
	debt        sim.Time // accumulated cycle cost not yet slept
	mmioPending bool     // an uncached access has not yet been consumed by a branch
	faultinfo   error
}

// New returns a CPU at reset.
func New(k *sim.Kernel, cfg Config) *CPU {
	if cfg.UncachedExtra == 0 {
		cfg.UncachedExtra = 35
	}
	if cfg.PostUncachedBranch == 0 {
		cfg.PostUncachedBranch = 51
	}
	if cfg.CachedAccessCost == 0 {
		cfg.CachedAccessCost = 2
	}
	if cfg.TrapEntryCost == 0 {
		cfg.TrapEntryCost = 80
	}
	c := &CPU{
		cfg:     cfg,
		k:       k,
		pc:      cfg.PC,
		wfiWake: sim.NewSignal(k, "rv64.wfi"),
	}
	c.doneSig = sim.NewLatchedSignal(k, "rv64.done")
	return c
}

// SetIRQ drives an interrupt-pending bit (MSIP/MTIP/MEIP) from the
// platform (CLINT, PLIC).
func (c *CPU) SetIRQ(bit uint64, high bool) {
	if high {
		c.mip |= bit
	} else {
		c.mip &^= bit
	}
	if high {
		c.wfiWake.Fire()
	}
}

// SetMaxInstructions adjusts the runaway budget after construction.
func (c *CPU) SetMaxInstructions(n uint64) { c.cfg.MaxInstructions = n }

// Reg returns register x[i].
func (c *CPU) Reg(i int) uint64 { return c.x[i] }

// SetReg sets register x[i] (i=0 is ignored, as in hardware).
func (c *CPU) SetReg(i int, v uint64) {
	if i != 0 {
		c.x[i] = v
	}
}

// PC returns the current program counter.
func (c *CPU) PC() uint64 { return c.pc }

// Halted reports whether the program has stopped (ebreak or fault).
func (c *CPU) Halted() bool { return c.halted }

// HaltCode returns a0 at the halting ebreak (the program's exit code).
func (c *CPU) HaltCode() uint64 { return c.haltCode }

// Err returns the fault that stopped execution, if any.
func (c *CPU) Err() error { return c.faultinfo }

// Instret returns the retired-instruction count.
func (c *CPU) Instret() uint64 { return c.minstret }

// Done returns a latched signal fired when the CPU halts.
func (c *CPU) Done() *sim.Signal { return c.doneSig }

// Start launches the hart as a simulation process.
func (c *CPU) Start() {
	c.k.Go("rv64.hart", func(p *sim.Proc) { c.run(p) })
}

// stop halts the CPU and releases waiters.
func (c *CPU) stop(err error) {
	c.halted = true
	c.faultinfo = err
	c.haltCode = c.x[10] // a0
	c.doneSig.Fire()
}

// charge accumulates cycle debt, flushed in batches to keep the event
// count low without distorting long-run timing.
func (c *CPU) charge(p *sim.Proc, n sim.Time) {
	c.debt += n
	if c.debt >= 64 {
		p.Sleep(c.debt)
		c.debt = 0
	}
}

// flush settles outstanding debt immediately (before MMIO, WFI and
// interrupt checks, where exact ordering matters).
func (c *CPU) flush(p *sim.Proc) {
	if c.debt > 0 {
		p.Sleep(c.debt)
		c.debt = 0
	}
}

func (c *CPU) cached(addr uint64, n int) *CachedWindow {
	for i := range c.cfg.CachedWindows {
		w := &c.cfg.CachedWindows[i]
		if addr >= w.Base && addr+uint64(n) <= w.Base+w.Size {
			return w
		}
	}
	return nil
}

// interruptPending returns the cause of the highest-priority enabled
// pending interrupt, or 0.
func (c *CPU) interruptPending() uint64 {
	if c.mstatus&mstatusMIE == 0 {
		return 0
	}
	enabled := c.mip & c.mie
	switch {
	case enabled&MEIP != 0:
		return causeExternalIRQ
	case enabled&MSIP != 0:
		return causeSoftIRQ
	case enabled&MTIP != 0:
		return causeTimerIRQ
	}
	return 0
}

// trap enters the machine trap handler.
func (c *CPU) trap(p *sim.Proc, cause, tval uint64, isIRQ bool) {
	c.flush(p)
	c.mcause = cause
	c.mtval = tval
	c.mepc = c.pc
	// Save and clear MIE.
	if c.mstatus&mstatusMIE != 0 {
		c.mstatus |= mstatusMPIE
	} else {
		c.mstatus &^= mstatusMPIE
	}
	c.mstatus &^= mstatusMIE
	c.mstatus |= mstatusMPP // returning to M-mode
	base := c.mtvec &^ 3
	if c.mtvec&3 == 1 && isIRQ {
		base += 4 * (cause &^ (1 << 63)) // vectored mode
	}
	c.pc = base
	p.Sleep(c.cfg.TrapEntryCost)
}

// mret returns from the trap handler.
func (c *CPU) mret() {
	if c.mstatus&mstatusMPIE != 0 {
		c.mstatus |= mstatusMIE
	} else {
		c.mstatus &^= mstatusMIE
	}
	c.mstatus |= mstatusMPIE
	c.pc = c.mepc
}

// fetch reads the next instruction from the boot image.
func (c *CPU) fetch() (uint32, error) {
	off := c.pc - c.cfg.BootBase
	if c.pc < c.cfg.BootBase || off+4 > uint64(len(c.cfg.BootImage)) {
		return 0, fmt.Errorf("rv64: instruction fetch outside boot image at %#x", c.pc)
	}
	if c.pc%4 != 0 {
		return 0, fmt.Errorf("rv64: misaligned pc %#x", c.pc)
	}
	b := c.cfg.BootImage[off : off+4]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// run is the hart's main loop.
func (c *CPU) run(p *sim.Proc) {
	for !c.halted {
		if c.cfg.MaxInstructions > 0 && c.minstret >= c.cfg.MaxInstructions {
			c.stop(fmt.Errorf("rv64: instruction budget (%d) exhausted at pc %#x", c.cfg.MaxInstructions, c.pc))
			return
		}
		if cause := c.interruptPending(); cause != 0 {
			c.trap(p, cause, 0, true)
			c.mmioPending = false
			continue
		}
		inst, err := c.fetch()
		if err != nil {
			c.stop(err)
			return
		}
		c.minstret++
		c.execute(p, inst)
	}
	c.flush(p)
}

// load performs a data load with timing.
func (c *CPU) load(p *sim.Proc, addr uint64, n int) (uint64, error) {
	var buf []byte
	if w := c.cached(addr, n); w != nil {
		c.charge(p, c.cfg.CachedAccessCost)
		buf = w.Mem.Peek(addr-w.Base, n)
	} else {
		c.flush(p)
		p.Sleep(c.cfg.UncachedExtra)
		c.mmioPending = true
		buf = make([]byte, n)
		if err := c.cfg.Bus.Read(p, addr, buf); err != nil {
			return 0, err
		}
	}
	var v uint64
	for i := n - 1; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	return v, nil
}

// store performs a data store with timing.
func (c *CPU) store(p *sim.Proc, addr uint64, n int, v uint64) error {
	buf := make([]byte, n)
	for i := 0; i < n; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	if w := c.cached(addr, n); w != nil {
		c.charge(p, c.cfg.CachedAccessCost)
		w.Mem.Load(addr-w.Base, buf)
		return nil
	}
	c.flush(p)
	p.Sleep(c.cfg.UncachedExtra)
	c.mmioPending = true
	return c.cfg.Bus.Write(p, addr, buf)
}

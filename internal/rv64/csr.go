package rv64

import (
	"fmt"

	"rvcap/internal/sim"
)

// CSR addresses.
const (
	csrMStatus  = 0x300
	csrMISA     = 0x301
	csrMIE      = 0x304
	csrMTVec    = 0x305
	csrMScratch = 0x340
	csrMEPC     = 0x341
	csrMCause   = 0x342
	csrMTVal    = 0x343
	csrMIP      = 0x344
	csrMHartID  = 0xF14
	csrMCycle   = 0xB00
	csrMInstret = 0xB02
	csrCycle    = 0xC00
	csrTime     = 0xC01
	csrInstret  = 0xC02
)

// misaValue advertises RV64IM ("I" bit 8, "M" bit 12, MXL=2 for 64-bit).
const misaValue = 2<<62 | 1<<8 | 1<<12

func (c *CPU) csrRead(addr uint32) (uint64, error) {
	switch addr {
	case csrMStatus:
		return c.mstatus, nil
	case csrMISA:
		return misaValue, nil
	case csrMIE:
		return c.mie, nil
	case csrMTVec:
		return c.mtvec, nil
	case csrMScratch:
		return c.mscratch, nil
	case csrMEPC:
		return c.mepc, nil
	case csrMCause:
		return c.mcause, nil
	case csrMTVal:
		return c.mtval, nil
	case csrMIP:
		return c.mip, nil
	case csrMHartID:
		return 0, nil
	case csrMCycle, csrCycle, csrTime:
		return uint64(c.k.Now()), nil
	case csrMInstret, csrInstret:
		return c.minstret, nil
	}
	return 0, fmt.Errorf("rv64: unknown CSR %#x", addr)
}

func (c *CPU) csrWrite(addr uint32, v uint64) error {
	switch addr {
	case csrMStatus:
		c.mstatus = v & (mstatusMIE | mstatusMPIE | mstatusMPP)
	case csrMIE:
		c.mie = v & (MSIP | MTIP | MEIP)
	case csrMTVec:
		c.mtvec = v
	case csrMScratch:
		c.mscratch = v
	case csrMEPC:
		c.mepc = v &^ 1
	case csrMCause:
		c.mcause = v
	case csrMTVal:
		c.mtval = v
	case csrMIP:
		// Software may clear MSIP-style bits; platform bits are wired.
	case csrMISA, csrMHartID, csrMCycle, csrMInstret, csrCycle, csrTime, csrInstret:
		// Read-only or ignored.
	default:
		return fmt.Errorf("rv64: unknown CSR %#x", addr)
	}
	return nil
}

// system executes SYSTEM-opcode instructions. It returns false when the
// pc has already been redirected (trap, mret, halt).
func (c *CPU) system(p *sim.Proc, inst uint32, rd, rs1 int, funct3 uint32) bool {
	csr := inst >> 20
	switch funct3 {
	case 0:
		switch inst {
		case 0x00000073: // ECALL
			c.trap(p, causeECallM, 0, false)
			return false
		case 0x00100073: // EBREAK: halt the simulation (bare-metal exit)
			c.flush(p)
			c.stop(nil)
			return false
		case 0x30200073: // MRET
			c.mret()
			c.charge(p, 5)
			return false // pc already set
		case 0x10500073: // WFI: sleep until an interrupt is pending
			c.flush(p)
			for c.mip&c.mie == 0 {
				p.Wait(c.wfiWake)
			}
			c.pc += 4
			return false
		default:
			c.illegal(p, inst)
			return false
		}
	case 1, 2, 3, 5, 6, 7: // CSR ops
		var src uint64
		if funct3 >= 5 {
			src = uint64(rs1) // immediate form: rs1 field is the zimm
		} else {
			src = c.x[rs1]
		}
		old, err := c.csrRead(csr)
		if err != nil {
			c.illegal(p, inst)
			return false
		}
		var v uint64
		write := true
		switch funct3 & 3 {
		case 1: // CSRRW
			v = src
		case 2: // CSRRS
			v = old | src
			write = rs1 != 0
		case 3: // CSRRC
			v = old &^ src
			write = rs1 != 0
		}
		if write {
			if err := c.csrWrite(csr, v); err != nil {
				c.illegal(p, inst)
				return false
			}
		}
		c.SetReg(rd, old)
		c.charge(p, 2)
		return true
	}
	c.illegal(p, inst)
	return false
}

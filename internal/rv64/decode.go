package rv64

import (
	"fmt"
	"math/bits"

	"rvcap/internal/sim"
)

// Immediate extractors (sign-extended where the ISA says so).
func immI(i uint32) int64 { return int64(int32(i)) >> 20 }
func immS(i uint32) int64 {
	return int64(int32(i&0xFE000000))>>20 | int64(i>>7&0x1F)
}
func immB(i uint32) int64 {
	return int64(int32(i&0x80000000))>>19 |
		int64(i>>7&0x1)<<11 | int64(i>>25&0x3F)<<5 | int64(i>>8&0xF)<<1
}
func immU(i uint32) int64 { return int64(int32(i & 0xFFFFF000)) }
func immJ(i uint32) int64 {
	return int64(int32(i&0x80000000))>>11 |
		int64(i>>12&0xFF)<<12 | int64(i>>20&0x1)<<11 | int64(i>>21&0x3FF)<<1
}

func sext32(v uint64) uint64 { return uint64(int64(int32(uint32(v)))) }

// execute runs one instruction. pc has not been advanced yet.
func (c *CPU) execute(p *sim.Proc, inst uint32) {
	opcode := inst & 0x7F
	rd := int(inst >> 7 & 0x1F)
	rs1 := int(inst >> 15 & 0x1F)
	rs2 := int(inst >> 20 & 0x1F)
	funct3 := inst >> 12 & 0x7
	funct7 := inst >> 25

	next := c.pc + 4

	switch opcode {
	case 0x37: // LUI
		c.SetReg(rd, uint64(immU(inst)))
		c.charge(p, 1)
	case 0x17: // AUIPC
		c.SetReg(rd, c.pc+uint64(immU(inst)))
		c.charge(p, 1)
	case 0x6F: // JAL
		c.SetReg(rd, next)
		next = c.pc + uint64(immJ(inst))
		c.charge(p, 2)
	case 0x67: // JALR
		t := (c.x[rs1] + uint64(immI(inst))) &^ 1
		c.SetReg(rd, next)
		next = t
		c.charge(p, 2)
	case 0x63: // branches
		var taken bool
		a, b := c.x[rs1], c.x[rs2]
		switch funct3 {
		case 0:
			taken = a == b
		case 1:
			taken = a != b
		case 4:
			taken = int64(a) < int64(b)
		case 5:
			taken = int64(a) >= int64(b)
		case 6:
			taken = a < b
		case 7:
			taken = a >= b
		default:
			c.illegal(p, inst)
			return
		}
		// "The Ariane pipeline must block after each loop iteration
		// until the conditional jump is executed completely" (paper
		// §IV-B): the in-order core cannot resolve a conditional branch
		// while an uncached access is outstanding, so the first branch
		// after a device access pays the pipeline drain.
		if c.mmioPending {
			c.charge(p, c.cfg.PostUncachedBranch)
			c.mmioPending = false
		} else if taken {
			c.charge(p, 3) // mispredict-ish cost for taken branches
		} else {
			c.charge(p, 1)
		}
		if taken {
			next = c.pc + uint64(immB(inst))
		}
	case 0x03: // loads
		addr := c.x[rs1] + uint64(immI(inst))
		var n int
		var signed bool
		switch funct3 {
		case 0:
			n, signed = 1, true
		case 1:
			n, signed = 2, true
		case 2:
			n, signed = 4, true
		case 3:
			n = 8
		case 4:
			n = 1
		case 5:
			n = 2
		case 6:
			n = 4
		default:
			c.illegal(p, inst)
			return
		}
		if addr%uint64(n) != 0 {
			c.trap(p, causeMisalignedLoad, addr, false)
			return
		}
		v, err := c.load(p, addr, n)
		if err != nil {
			c.trap(p, causeLoadAccess, addr, false)
			return
		}
		if signed {
			shift := 64 - 8*n
			v = uint64(int64(v<<shift) >> shift)
		}
		c.SetReg(rd, v)
	case 0x23: // stores
		addr := c.x[rs1] + uint64(immS(inst))
		n := 1 << funct3
		if funct3 > 3 {
			c.illegal(p, inst)
			return
		}
		if addr%uint64(n) != 0 {
			c.trap(p, causeMisalignedStore, addr, false)
			return
		}
		if err := c.store(p, addr, n, c.x[rs2]); err != nil {
			c.trap(p, causeStoreAccess, addr, false)
			return
		}
	case 0x13: // OP-IMM
		imm := uint64(immI(inst))
		var v uint64
		switch funct3 {
		case 0:
			v = c.x[rs1] + imm
		case 2:
			if int64(c.x[rs1]) < int64(imm) {
				v = 1
			}
		case 3:
			if c.x[rs1] < imm {
				v = 1
			}
		case 4:
			v = c.x[rs1] ^ imm
		case 6:
			v = c.x[rs1] | imm
		case 7:
			v = c.x[rs1] & imm
		case 1: // SLLI
			if inst>>26 != 0 {
				c.illegal(p, inst)
				return
			}
			v = c.x[rs1] << (inst >> 20 & 0x3F)
		case 5: // SRLI/SRAI
			sh := inst >> 20 & 0x3F
			switch inst >> 26 {
			case 0:
				v = c.x[rs1] >> sh
			case 0x10:
				v = uint64(int64(c.x[rs1]) >> sh)
			default:
				c.illegal(p, inst)
				return
			}
		}
		c.SetReg(rd, v)
		c.charge(p, 1)
	case 0x1B: // OP-IMM-32
		imm := uint64(immI(inst))
		var v uint64
		switch funct3 {
		case 0: // ADDIW
			v = sext32(c.x[rs1] + imm)
		case 1: // SLLIW
			if funct7 != 0 {
				c.illegal(p, inst)
				return
			}
			v = sext32(c.x[rs1] << (inst >> 20 & 0x1F))
		case 5: // SRLIW/SRAIW
			sh := inst >> 20 & 0x1F
			switch funct7 {
			case 0:
				v = sext32(uint64(uint32(c.x[rs1]) >> sh))
			case 0x20:
				v = uint64(int64(int32(uint32(c.x[rs1]))) >> sh)
			default:
				c.illegal(p, inst)
				return
			}
		default:
			c.illegal(p, inst)
			return
		}
		c.SetReg(rd, v)
		c.charge(p, 1)
	case 0x33: // OP (incl. M)
		v, ok, cost := c.aluOp(funct3, funct7, c.x[rs1], c.x[rs2])
		if !ok {
			c.illegal(p, inst)
			return
		}
		c.SetReg(rd, v)
		c.charge(p, cost)
	case 0x3B: // OP-32 (incl. M W-forms)
		v, ok, cost := c.aluOp32(funct3, funct7, c.x[rs1], c.x[rs2])
		if !ok {
			c.illegal(p, inst)
			return
		}
		c.SetReg(rd, v)
		c.charge(p, cost)
	case 0x0F: // FENCE / FENCE.I
		c.charge(p, 1)
	case 0x73: // SYSTEM
		if !c.system(p, inst, rd, rs1, funct3) {
			return // trap or halt already handled
		}
	default:
		c.illegal(p, inst)
		return
	}
	c.pc = next
}

func (c *CPU) illegal(p *sim.Proc, inst uint32) {
	c.stop(fmt.Errorf("rv64: illegal instruction %#08x at pc %#x", inst, c.pc))
}

// aluOp implements OP-coded 64-bit arithmetic.
func (c *CPU) aluOp(funct3, funct7 uint32, a, b uint64) (v uint64, ok bool, cost sim.Time) {
	cost = 1
	ok = true
	switch {
	case funct7 == 0x00:
		switch funct3 {
		case 0:
			v = a + b
		case 1:
			v = a << (b & 0x3F)
		case 2:
			if int64(a) < int64(b) {
				v = 1
			}
		case 3:
			if a < b {
				v = 1
			}
		case 4:
			v = a ^ b
		case 5:
			v = a >> (b & 0x3F)
		case 6:
			v = a | b
		case 7:
			v = a & b
		}
	case funct7 == 0x20:
		switch funct3 {
		case 0:
			v = a - b
		case 5:
			v = uint64(int64(a) >> (b & 0x3F))
		default:
			ok = false
		}
	case funct7 == 0x01: // M extension
		cost = 4 // Ariane multiplier latency; div below
		switch funct3 {
		case 0: // MUL
			v = a * b
		case 1: // MULH
			v = mulhSigned(int64(a), int64(b))
		case 2: // MULHSU
			v = mulhSignedUnsigned(int64(a), b)
		case 3: // MULHU
			v, _ = bits.Mul64(a, b)
		case 4: // DIV
			cost = 20
			switch {
			case b == 0:
				v = ^uint64(0)
			case int64(a) == -1<<63 && int64(b) == -1:
				v = a
			default:
				v = uint64(int64(a) / int64(b))
			}
		case 5: // DIVU
			cost = 20
			if b == 0 {
				v = ^uint64(0)
			} else {
				v = a / b
			}
		case 6: // REM
			cost = 20
			switch {
			case b == 0:
				v = a
			case int64(a) == -1<<63 && int64(b) == -1:
				v = 0
			default:
				v = uint64(int64(a) % int64(b))
			}
		case 7: // REMU
			cost = 20
			if b == 0 {
				v = a
			} else {
				v = a % b
			}
		}
	default:
		ok = false
	}
	return
}

// aluOp32 implements OP-32-coded word arithmetic.
func (c *CPU) aluOp32(funct3, funct7 uint32, a, b uint64) (v uint64, ok bool, cost sim.Time) {
	cost = 1
	ok = true
	switch {
	case funct7 == 0x00:
		switch funct3 {
		case 0:
			v = sext32(a + b)
		case 1:
			v = sext32(a << (b & 0x1F))
		case 5:
			v = sext32(uint64(uint32(a) >> (b & 0x1F)))
		default:
			ok = false
		}
	case funct7 == 0x20:
		switch funct3 {
		case 0:
			v = sext32(a - b)
		case 5:
			v = uint64(int64(int32(uint32(a))) >> (b & 0x1F))
		default:
			ok = false
		}
	case funct7 == 0x01: // M W-forms
		aw, bw := int32(uint32(a)), int32(uint32(b))
		switch funct3 {
		case 0: // MULW
			cost = 4
			v = uint64(int64(aw * bw))
		case 4: // DIVW
			cost = 20
			switch {
			case bw == 0:
				v = ^uint64(0)
			case aw == -1<<31 && bw == -1:
				v = uint64(int64(aw))
			default:
				v = uint64(int64(aw / bw))
			}
		case 5: // DIVUW
			cost = 20
			if bw == 0 {
				v = ^uint64(0)
			} else {
				v = sext32(uint64(uint32(a) / uint32(b)))
			}
		case 6: // REMW
			cost = 20
			switch {
			case bw == 0:
				v = uint64(int64(aw))
			case aw == -1<<31 && bw == -1:
				v = 0
			default:
				v = uint64(int64(aw % bw))
			}
		case 7: // REMUW
			cost = 20
			if bw == 0 {
				v = sext32(a)
			} else {
				v = sext32(uint64(uint32(a) % uint32(b)))
			}
		default:
			ok = false
		}
	default:
		ok = false
	}
	return
}

func absU(v int64) uint64 {
	if v < 0 {
		return uint64(-v)
	}
	return uint64(v)
}

// mulhSigned returns the high 64 bits of a*b (signed x signed).
func mulhSigned(a, b int64) uint64 {
	neg := (a < 0) != (b < 0)
	hi, lo := bits.Mul64(absU(a), absU(b))
	if neg {
		// Two's complement of the 128-bit product.
		lo = ^lo + 1
		hi = ^hi
		if lo == 0 {
			hi++
		}
	}
	return hi
}

// mulhSignedUnsigned returns the high 64 bits of a*b (signed x unsigned).
func mulhSignedUnsigned(a int64, b uint64) uint64 {
	hi, lo := bits.Mul64(absU(a), b)
	if a < 0 {
		lo = ^lo + 1
		hi = ^hi
		if lo == 0 {
			hi++
		}
	}
	return hi
}

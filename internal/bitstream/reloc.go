package bitstream

import (
	"fmt"

	"rvcap/internal/fpga"
)

// Relocation: a partial bitstream compiled for one region is retargeted
// to another by rewriting only its FAR packets — the FDRI frame
// payloads are copied bit-for-bit, so a relocated load realises exactly
// the compiled logic at the shifted addresses. Because the 7-series
// configuration CRC covers the FAR writes, every embedded CRC check
// word is recomputed for the shifted stream; the original stream's CRC
// is verified on the way through, so a corrupted image is refused
// rather than silently re-sealed with a fresh checksum.

// ErrCorrupt marks a stream Relocate refused: malformed packets,
// truncated payloads, or an embedded CRC that does not match the
// original stream's contents.
var ErrCorrupt = fmt.Errorf("bitstream: refusing to relocate corrupt stream")

// Relocate rewrites every FAR write of a configuration word stream
// through shift and re-seals the embedded CRC check words. All other
// words — preamble, commands, FDRI frame payloads including the
// trailing pad frames, NOP padding and the post-DESYNC trailer — are
// copied verbatim. The input is never modified.
func Relocate(words []uint32, shift func(far uint32) (uint32, error)) ([]uint32, error) {
	out := make([]uint32, 0, len(words))
	i := 0
	synced := false
	for ; i < len(words); i++ {
		out = append(out, words[i])
		if words[i] == fpga.SyncWord {
			synced = true
			i++
			break
		}
	}
	if !synced {
		return nil, fmt.Errorf("%w: no sync word in %d-word stream", ErrCorrupt, len(words))
	}

	// origCRC runs over the incoming words, outCRC over the shifted
	// ones; they diverge at the first relocated FAR and re-converge to
	// zero at every check word.
	var origCRC, outCRC uint32
	var lastReg, lastOp uint32
	desynced := false
	consume := func(reg uint32, count int) error {
		if i+count > len(words) {
			return fmt.Errorf("%w: truncated payload for reg %#x at word %d", ErrCorrupt, reg, i)
		}
		for n := 0; n < count; n++ {
			w := words[i]
			i++
			switch reg {
			case fpga.RegCRC:
				if w != origCRC {
					return fmt.Errorf("%w: embedded CRC %#08x does not match contents (%#08x)",
						ErrCorrupt, w, origCRC)
				}
				out = append(out, outCRC)
				origCRC, outCRC = 0, 0
				continue
			case fpga.RegFAR:
				nw, err := shift(w)
				if err != nil {
					return fmt.Errorf("bitstream: relocating FAR %#08x: %v", w, err)
				}
				out = append(out, nw)
				origCRC = fpga.UpdateCRC(origCRC, reg, w)
				outCRC = fpga.UpdateCRC(outCRC, reg, nw)
				continue
			case fpga.RegCMD:
				out = append(out, w)
				origCRC = fpga.UpdateCRC(origCRC, reg, w)
				outCRC = fpga.UpdateCRC(outCRC, reg, w)
				if w&0x1F == fpga.CmdRCRC {
					origCRC, outCRC = 0, 0
				}
				if w&0x1F == fpga.CmdDesync {
					desynced = true
				}
				continue
			}
			out = append(out, w)
			origCRC = fpga.UpdateCRC(origCRC, reg, w)
			outCRC = fpga.UpdateCRC(outCRC, reg, w)
		}
		return nil
	}
	for i < len(words) {
		if desynced {
			// Post-desync trailer: copied verbatim.
			out = append(out, words[i])
			i++
			continue
		}
		h := words[i]
		i++
		out = append(out, h)
		switch h >> 29 {
		case 1:
			reg := h >> 13 & 0x3FFF
			op := h >> 27 & 0x3
			lastReg, lastOp = reg, op
			if op == 2 {
				if err := consume(reg, int(h&0x7FF)); err != nil {
					return nil, err
				}
			}
		case 2:
			if lastOp == 1 {
				continue // readback request: no payload in the stream
			}
			if err := consume(lastReg, int(h&0x7FFFFFF)); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: bad packet header %#08x at word %d", ErrCorrupt, h, i-1)
		}
	}
	if !desynced {
		return nil, fmt.Errorf("%w: stream does not end with DESYNC", ErrCorrupt)
	}
	return out, nil
}

// RelocateImage retargets im through shift, returning a new image. The
// frame contents — and therefore the content signature the load
// produces — are unchanged; only the addresses move, so the relocated
// image activates the same registered module in its new region.
func RelocateImage(im *Image, partition string, shift func(far uint32) (uint32, error)) (*Image, error) {
	words, err := Relocate(im.Words, shift)
	if err != nil {
		return nil, err
	}
	return &Image{
		Module:    im.Module,
		Partition: partition,
		Words:     words,
		Signature: im.Signature,
		Frames:    im.Frames,
	}, nil
}

package bitstream

import (
	"fmt"

	"rvcap/internal/fpga"
)

// Summary describes a parsed configuration stream, used by the
// mkbitstream inspection tool and the validating ("safe DPR") transfer
// modes.
type Summary struct {
	// Synced reports whether a sync word was found.
	Synced bool
	// IDCode is the IDCODE the stream asserts (0 when absent).
	IDCode uint32
	// FrameDataWords counts FDRI payload words (including pad frames).
	FrameDataWords int
	// FARWrites lists the frame addresses the stream seeks to.
	FARWrites []uint32
	// Commands lists CMD register writes in order.
	Commands []uint32
	// CRCWords lists the CRC check values present in the stream.
	CRCWords []uint32
	// CRCValid reports whether every CRC check word matches the running
	// CRC at its position (vacuously true for streams without checks).
	CRCValid bool
	// Desynced reports whether the stream ends with a DESYNC command.
	Desynced bool
}

// Parse statically analyses a configuration word stream without touching
// a device. It implements the same packet grammar as the fpga.ICAP
// engine and recomputes the configuration CRC, so it can vet a bitstream
// before it is committed to the fabric (the Di Carlo-style "safe DPR"
// mode of the paper's related work).
func Parse(words []uint32) (*Summary, error) {
	s := &Summary{CRCValid: true}
	i := 0
	// Pre-sync: skip until the sync word.
	for ; i < len(words); i++ {
		if words[i] == fpga.SyncWord {
			s.Synced = true
			i++
			break
		}
	}
	if !s.Synced {
		return s, fmt.Errorf("bitstream: no sync word in %d-word stream", len(words))
	}
	var crc uint32
	var lastReg uint32
	consume := func(reg uint32, count int) error {
		if i+count > len(words) {
			return fmt.Errorf("bitstream: truncated payload for reg %#x at word %d", reg, i)
		}
		for n := 0; n < count; n++ {
			w := words[i]
			i++
			switch reg {
			case fpga.RegCRC:
				s.CRCWords = append(s.CRCWords, w)
				if w != crc {
					s.CRCValid = false
				}
				crc = 0
				continue
			case fpga.RegFDRI:
				s.FrameDataWords++
			case fpga.RegFAR:
				s.FARWrites = append(s.FARWrites, w)
			case fpga.RegIDCODE:
				s.IDCode = w
			case fpga.RegCMD:
				s.Commands = append(s.Commands, w&0x1F)
				if w&0x1F == fpga.CmdRCRC {
					crc = fpga.UpdateCRC(crc, reg, w)
					crc = 0
					continue
				}
				if w&0x1F == fpga.CmdDesync {
					s.Desynced = true
				}
			}
			crc = fpga.UpdateCRC(crc, reg, w)
		}
		return nil
	}
	for i < len(words) {
		if s.Desynced {
			// Post-desync trailer: anything goes.
			i++
			continue
		}
		h := words[i]
		i++
		switch h >> 29 {
		case 1:
			reg := h >> 13 & 0x3FFF
			op := h >> 27 & 0x3
			lastReg = reg
			if op == 2 {
				if err := consume(reg, int(h&0x7FF)); err != nil {
					return s, err
				}
			}
		case 2:
			if err := consume(lastReg, int(h&0x7FFFFFF)); err != nil {
				return s, err
			}
		default:
			return s, fmt.Errorf("bitstream: bad packet header %#08x at word %d", h, i-1)
		}
	}
	return s, nil
}

// Validate runs Parse and applies the checks a safe-DPR controller
// performs before committing a bitstream: well-formed packets, matching
// IDCODE, valid CRC, and a terminating DESYNC.
func Validate(words []uint32, dev *fpga.Device) error {
	s, err := Parse(words)
	if err != nil {
		return err
	}
	if s.IDCode != 0 && s.IDCode != dev.IDCode {
		return fmt.Errorf("bitstream: IDCODE %#08x does not match device %s (%#08x)",
			s.IDCode, dev.Name, dev.IDCode)
	}
	if !s.CRCValid {
		return fmt.Errorf("bitstream: embedded CRC check fails")
	}
	if !s.Desynced {
		return fmt.Errorf("bitstream: stream does not end with DESYNC")
	}
	return nil
}

package bitstream

import (
	"errors"
	"fmt"
)

// This file implements the word-oriented run-length compression used by
// the RT-ICAP baseline (Pezzarossa et al. [15]: "features the capability
// of partial bitstream compression before transferring it to the FPGA
// configuration memory to reduce its size and therefore reduce the
// reconfiguration time"). Configuration streams compress well because
// pad frames, NOP padding and unused fabric are long runs of identical
// words.
//
// Format: a 4-byte magic, then tokens. Each token is one header byte:
//
//	0x00..0x7F: literal run of (header+1) words, followed by the words
//	0x80..0xFF: repeat run of (header-0x7F) copies of the following word
//
// Words are big-endian, matching WordsToBytes.

// compressMagic identifies the compressed container.
var compressMagic = []byte{'R', 'V', 'C', 'Z'}

// ErrNotCompressed reports input without the compression magic.
var ErrNotCompressed = errors.New("bitstream: not a compressed stream")

const maxRun = 128

// Compress encodes a configuration word stream.
func Compress(words []uint32) []byte {
	out := append([]byte(nil), compressMagic...)
	emitWord := func(w uint32) {
		out = append(out, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
	}
	i := 0
	for i < len(words) {
		// Measure the repeat run at i.
		j := i + 1
		for j < len(words) && words[j] == words[i] && j-i < maxRun {
			j++
		}
		if j-i >= 2 {
			out = append(out, byte(0x7F+(j-i)))
			emitWord(words[i])
			i = j
			continue
		}
		// Literal run: until the next repeat of length >= 3 (a repeat of
		// 2 codes no better than a literal) or maxRun.
		start := i
		for i < len(words) && i-start < maxRun {
			if i+2 < len(words) && words[i] == words[i+1] && words[i] == words[i+2] {
				break
			}
			i++
		}
		out = append(out, byte(i-start-1))
		for _, w := range words[start:i] {
			emitWord(w)
		}
	}
	return out
}

// Decompress decodes a stream produced by Compress.
func Decompress(data []byte) ([]uint32, error) {
	if len(data) < len(compressMagic) || string(data[:4]) != string(compressMagic) {
		return nil, ErrNotCompressed
	}
	var words []uint32
	i := 4
	word := func() (uint32, error) {
		if i+4 > len(data) {
			return 0, fmt.Errorf("bitstream: truncated compressed stream at byte %d", i)
		}
		w := uint32(data[i])<<24 | uint32(data[i+1])<<16 | uint32(data[i+2])<<8 | uint32(data[i+3])
		i += 4
		return w, nil
	}
	for i < len(data) {
		h := data[i]
		i++
		if h < 0x80 {
			for n := 0; n <= int(h); n++ {
				w, err := word()
				if err != nil {
					return nil, err
				}
				words = append(words, w)
			}
			continue
		}
		w, err := word()
		if err != nil {
			return nil, err
		}
		for n := 0; n < int(h)-0x7F; n++ {
			words = append(words, w)
		}
	}
	return words, nil
}

// IsCompressed reports whether data begins with the compression magic.
func IsCompressed(data []byte) bool {
	return len(data) >= 4 && string(data[:4]) == string(compressMagic)
}

package bitstream

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// BitFile is the .bit container: a metadata header wrapping the raw
// configuration stream, as produced for each reconfigurable module by
// the implementation flow and stored on the SD card. The layout follows
// the classic Xilinx .bit structure of tagged, length-prefixed fields:
//
//	field 'a': design name, 'b': part name, 'c': date, 'd': time,
//	field 'e': 32-bit payload length followed by the raw stream.
type BitFile struct {
	Design string
	Part   string
	Date   string
	Time   string
	Data   []byte // raw big-endian configuration stream
}

// bitPreamble is the fixed 13-byte header real .bit files start with
// (a length-9 field of zeros/ones and a 0x0001, then field tag 'a').
var bitPreamble = []byte{0x00, 0x09, 0x0F, 0xF0, 0x0F, 0xF0, 0x0F, 0xF0, 0x0F, 0xF0, 0x00, 0x00, 0x01}

// MarshalBit serialises the container.
func (f *BitFile) MarshalBit() []byte {
	var b bytes.Buffer
	b.Write(bitPreamble)
	str := func(tag byte, s string) {
		b.WriteByte(tag)
		binary.Write(&b, binary.BigEndian, uint16(len(s)+1))
		b.WriteString(s)
		b.WriteByte(0)
	}
	str('a', f.Design)
	str('b', f.Part)
	str('c', f.Date)
	str('d', f.Time)
	b.WriteByte('e')
	binary.Write(&b, binary.BigEndian, uint32(len(f.Data)))
	b.Write(f.Data)
	return b.Bytes()
}

// ParseBit parses a .bit container. It fails on malformed headers; use
// StripHeader when the input may be either .bit or raw .bin.
func ParseBit(data []byte) (*BitFile, error) {
	if len(data) < len(bitPreamble)+1 || !bytes.Equal(data[:len(bitPreamble)], bitPreamble) {
		return nil, fmt.Errorf("bitstream: missing .bit preamble")
	}
	f := &BitFile{}
	i := len(bitPreamble)
	for i < len(data) {
		tag := data[i]
		i++
		if tag == 'e' {
			if i+4 > len(data) {
				return nil, fmt.Errorf("bitstream: truncated field 'e' length")
			}
			n := int(binary.BigEndian.Uint32(data[i:]))
			i += 4
			if i+n > len(data) {
				return nil, fmt.Errorf("bitstream: field 'e' claims %d bytes, %d available", n, len(data)-i)
			}
			f.Data = data[i : i+n]
			return f, nil
		}
		if i+2 > len(data) {
			return nil, fmt.Errorf("bitstream: truncated field %q length", tag)
		}
		n := int(binary.BigEndian.Uint16(data[i:]))
		i += 2
		if i+n > len(data) || n == 0 {
			return nil, fmt.Errorf("bitstream: truncated field %q", tag)
		}
		s := string(data[i : i+n-1]) // trailing NUL
		i += n
		switch tag {
		case 'a':
			f.Design = s
		case 'b':
			f.Part = s
		case 'c':
			f.Date = s
		case 'd':
			f.Time = s
		default:
			return nil, fmt.Errorf("bitstream: unknown .bit field %q", tag)
		}
	}
	return nil, fmt.Errorf("bitstream: no payload field 'e'")
}

// StripHeader returns the raw configuration stream whether data is a
// .bit container or already raw (.bin).
func StripHeader(data []byte) []byte {
	if f, err := ParseBit(data); err == nil {
		return f.Data
	}
	return data
}

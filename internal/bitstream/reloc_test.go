package bitstream

import (
	"errors"
	"testing"

	"rvcap/internal/fpga"
)

// colShift returns a FAR rewriter moving every address delta columns to
// the right (the two test partitions sit on identical CLB column runs,
// so a pure column shift is a valid relocation).
func colShift(dev *fpga.Device, delta int) func(uint32) (uint32, error) {
	return func(far uint32) (uint32, error) {
		row, col, minor := dev.UnpackFAR(far)
		if _, err := dev.FrameIndex(row, col+delta, minor); err != nil {
			return 0, err
		}
		return dev.PackFAR(row, col+delta, minor), nil
	}
}

// relocSetup builds a fabric with two same-shape CLB partitions two
// columns apart and a module image compiled for the first.
func relocSetup(t *testing.T) (*fpga.Fabric, *fpga.Partition, *fpga.Partition, *Image) {
	t.Helper()
	fab := fpga.NewFabric(fpga.NewKintex7())
	src, err := fpga.NewSpanPartition(fab, "SRC", 0, 0, 0, 1, fpga.Resources{})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := fpga.NewSpanPartition(fab, "DST", 0, 0, 2, 3, fpga.Resources{})
	if err != nil {
		t.Fatal(err)
	}
	im, err := Partial(fab.Dev, src, "sobel", Options{})
	if err != nil {
		t.Fatal(err)
	}
	return fab, src, dst, im
}

func TestRelocateRoundTrip(t *testing.T) {
	fab, src, dst, im := relocSetup(t)
	dev := fab.Dev

	shifted, err := Relocate(im.Words, colShift(dev, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(shifted) != len(im.Words) {
		t.Fatalf("relocation changed stream length: %d -> %d", len(im.Words), len(shifted))
	}

	// The shifted stream parses clean and seeks to the target runs.
	orig, err := Parse(im.Words)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Parse(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if !s.CRCValid || !s.Desynced {
		t.Fatalf("relocated stream: CRCValid=%v Desynced=%v", s.CRCValid, s.Desynced)
	}
	var wantFARs []uint32
	for _, run := range dst.Runs() {
		far, err := dev.IndexToFAR(run[0])
		if err != nil {
			t.Fatal(err)
		}
		wantFARs = append(wantFARs, far)
	}
	if len(s.FARWrites) != len(wantFARs) {
		t.Fatalf("FARWrites = %v, want %v", s.FARWrites, wantFARs)
	}
	for i := range wantFARs {
		if s.FARWrites[i] != wantFARs[i] {
			t.Fatalf("FARWrites[%d] = %#08x, want %#08x", i, s.FARWrites[i], wantFARs[i])
		}
	}
	// The FDRI payload — logic frames and per-run trailing pad frames —
	// is untouched: word counts match and the inverse shift restores the
	// original stream byte-for-byte (CRC re-sealing included).
	if s.FrameDataWords != orig.FrameDataWords {
		t.Fatalf("FrameDataWords = %d, want %d", s.FrameDataWords, orig.FrameDataWords)
	}
	wantPayload := (src.NumFrames() + len(src.Runs())) * fpga.FrameWords
	if s.FrameDataWords != wantPayload {
		t.Fatalf("FrameDataWords = %d, want %d (frames + pad per run)", s.FrameDataWords, wantPayload)
	}
	back, err := Relocate(shifted, colShift(dev, -2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range im.Words {
		if back[i] != im.Words[i] {
			t.Fatalf("round trip diverges at word %d: %#08x != %#08x", i, back[i], im.Words[i])
		}
	}
	// And the shifted stream is genuinely different (the FARs moved).
	same := true
	for i := range im.Words {
		if shifted[i] != im.Words[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("relocated stream identical to original")
	}
}

func TestRelocatedLoadWritesShiftedFrames(t *testing.T) {
	fab, src, dst, im := relocSetup(t)
	dev := fab.Dev

	// Direct load into SRC on one fabric...
	ic := fpga.NewICAP(fab)
	for _, w := range im.Words {
		ic.WriteWord(w)
	}
	if ic.Err() != nil {
		t.Fatal(ic.Err())
	}
	// ...relocated load into DST on a second, pristine fabric.
	fab2 := fpga.NewFabric(fpga.NewKintex7())
	dst2, err := fpga.NewSpanPartition(fab2, "DST", 0, 0, 2, 3, fpga.Resources{})
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := Relocate(im.Words, colShift(dev, 2))
	if err != nil {
		t.Fatal(err)
	}
	ic2 := fpga.NewICAP(fab2)
	for _, w := range shifted {
		ic2.WriteWord(w)
	}
	if ic2.Err() != nil {
		t.Fatal(ic2.Err())
	}
	if got := ic2.PartitionFrameWrites(dst2); got != uint64(dst2.NumFrames()) {
		t.Fatalf("relocated load wrote %d frames into DST, want %d", got, dst2.NumFrames())
	}
	if ic2.StaticFrameWrites() != 0 {
		t.Fatalf("relocated load touched %d static frames", ic2.StaticFrameWrites())
	}
	// Byte-identical frame contents at the shifted addresses.
	sf, df := src.Frames(), dst2.Frames()
	for i := range sf {
		a, err := fab.Mem.ReadFrame(sf[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := fab2.Mem.ReadFrame(df[i])
		if err != nil {
			t.Fatal(err)
		}
		for w := range a {
			if a[w] != b[w] {
				t.Fatalf("frame %d word %d differs: %#08x != %#08x", i, w, a[w], b[w])
			}
		}
	}
	// Same contents in frame order = same signature: registering the
	// source image's signature makes the relocated load activate the
	// module in the destination partition.
	if got := fab2.Signature(dst2); got != im.Signature {
		t.Fatalf("relocated signature %#x, want %#x", got, im.Signature)
	}
	_ = dst
}

func TestRelocateSkipCRC(t *testing.T) {
	fab, src, _, _ := relocSetup(t)
	im, err := Partial(fab.Dev, src, "median", Options{SkipCRC: true})
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := Relocate(im.Words, colShift(fab.Dev, 2))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Parse(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.CRCWords) != 0 {
		t.Fatalf("SkipCRC stream grew %d CRC words", len(s.CRCWords))
	}
	if !s.Desynced {
		t.Fatal("relocated SkipCRC stream lost its DESYNC")
	}
}

func TestRelocateRejectsCorruptInput(t *testing.T) {
	fab, _, _, im := relocSetup(t)
	dev := fab.Dev
	shift := colShift(dev, 2)

	// A bit flip in the FDRI payload breaks the embedded CRC: the
	// relocator must refuse rather than re-seal the damage.
	flipped, err := BytesToWords(FlipBit(im.Bytes(), (len(im.Words)/2)*32+5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Relocate(flipped, shift); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-flipped stream: err = %v, want ErrCorrupt", err)
	}

	// A truncated stream dies on the unfinished payload.
	cut, err := BytesToWords(Truncate(im.Bytes(), len(im.Bytes())/2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Relocate(cut, shift); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated stream: err = %v, want ErrCorrupt", err)
	}

	// No sync word at all.
	if _, err := Relocate([]uint32{fpga.DummyWord, fpga.NoopWord}, shift); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("syncless stream: err = %v, want ErrCorrupt", err)
	}

	// A shift that walks off the device surfaces the shift error.
	if _, err := Relocate(im.Words, colShift(dev, 10_000)); err == nil {
		t.Fatal("off-device shift accepted")
	}
}

package bitstream

import (
	"bytes"
	"testing"
	"testing/quick"

	"rvcap/internal/fpga"
)

func defaultSetup(t *testing.T) (*fpga.Fabric, *fpga.Partition) {
	t.Helper()
	fab := fpga.NewFabric(fpga.NewKintex7())
	part, err := fpga.AddDefaultPartition(fab)
	if err != nil {
		t.Fatal(err)
	}
	return fab, part
}

func TestPartialDefaultSizeMatchesPaper(t *testing.T) {
	fab, part := defaultSetup(t)
	im, err := Partial(fab.Dev, part, "sobel", Options{PadToBytes: DefaultBitstreamBytes})
	if err != nil {
		t.Fatal(err)
	}
	if im.SizeBytes() != DefaultBitstreamBytes {
		t.Errorf("default image size = %d bytes, want %d", im.SizeBytes(), DefaultBitstreamBytes)
	}
	if im.Frames != part.NumFrames() {
		t.Errorf("image frames = %d, want %d", im.Frames, part.NumFrames())
	}
}

func TestPartialLoadsThroughICAP(t *testing.T) {
	fab, part := defaultSetup(t)
	ic := fpga.NewICAP(fab)
	im, err := Partial(fab.Dev, part, "median", Options{PadToBytes: DefaultBitstreamBytes})
	if err != nil {
		t.Fatal(err)
	}
	Register(fab, im)
	for _, w := range im.Words {
		ic.WriteWord(w)
	}
	if ic.Err() != nil {
		t.Fatalf("ICAP error: %v", ic.Err())
	}
	if part.Active() != "median" {
		t.Fatalf("partition active = %q, want median", part.Active())
	}
	if ic.FramesWritten() != uint64(part.NumFrames()) {
		t.Errorf("frames written = %d, want %d", ic.FramesWritten(), part.NumFrames())
	}
	if ic.StaticFrameWrites() != 0 {
		t.Errorf("static frames touched: %d", ic.StaticFrameWrites())
	}
}

func TestModuleSwapChangesActive(t *testing.T) {
	fab, part := defaultSetup(t)
	ic := fpga.NewICAP(fab)
	for _, m := range []string{"sobel", "gaussian", "sobel"} {
		im, err := Partial(fab.Dev, part, m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		Register(fab, im)
		for _, w := range im.Words {
			ic.WriteWord(w)
		}
		if ic.Err() != nil {
			t.Fatalf("load %s: %v", m, ic.Err())
		}
		if part.Active() != m {
			t.Fatalf("after loading %s: active = %q", m, part.Active())
		}
	}
	if part.Loads() != 3 {
		t.Errorf("Loads = %d, want 3", part.Loads())
	}
}

func TestDistinctModulesDistinctSignatures(t *testing.T) {
	fab, part := defaultSetup(t)
	a, _ := Partial(fab.Dev, part, "sobel", Options{})
	b, _ := Partial(fab.Dev, part, "median", Options{})
	if a.Signature == b.Signature {
		t.Error("different modules share a signature")
	}
	// Same module is deterministic.
	a2, _ := Partial(fab.Dev, part, "sobel", Options{})
	if a.Signature != a2.Signature {
		t.Error("same module, different signatures")
	}
	if len(a.Words) != len(a2.Words) {
		t.Error("same module, different stream lengths")
	}
}

func TestUnregisteredModuleStaysInactive(t *testing.T) {
	fab, part := defaultSetup(t)
	ic := fpga.NewICAP(fab)
	im, _ := Partial(fab.Dev, part, "mystery", Options{})
	// Deliberately not registered.
	for _, w := range im.Words {
		ic.WriteWord(w)
	}
	if part.Active() != "" {
		t.Errorf("unregistered module activated as %q", part.Active())
	}
}

func TestPadToBytesTooSmall(t *testing.T) {
	fab, part := defaultSetup(t)
	if _, err := Partial(fab.Dev, part, "x", Options{PadToBytes: 100}); err == nil {
		t.Error("tiny PadToBytes accepted")
	}
}

func TestParseSummary(t *testing.T) {
	fab, part := defaultSetup(t)
	im, _ := Partial(fab.Dev, part, "sobel", Options{PadToBytes: DefaultBitstreamBytes})
	s, err := Parse(im.Words)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Synced || !s.Desynced || !s.CRCValid {
		t.Errorf("summary flags: synced=%v desynced=%v crc=%v", s.Synced, s.Desynced, s.CRCValid)
	}
	if s.IDCode != fab.Dev.IDCode {
		t.Errorf("IDCode = %#x", s.IDCode)
	}
	wantWords := (part.NumFrames() + 2) * fpga.FrameWords // 2 runs -> 2 pad frames
	if s.FrameDataWords != wantWords {
		t.Errorf("FrameDataWords = %d, want %d", s.FrameDataWords, wantWords)
	}
	if len(s.FARWrites) != 2 {
		t.Errorf("FARWrites = %d, want 2", len(s.FARWrites))
	}
	if len(s.CRCWords) != 1 {
		t.Errorf("CRCWords = %d, want 1", len(s.CRCWords))
	}
}

func TestParseNoSync(t *testing.T) {
	if _, err := Parse([]uint32{fpga.DummyWord, fpga.DummyWord}); err == nil {
		t.Error("stream without sync accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fab, part := defaultSetup(t)
	im, _ := Partial(fab.Dev, part, "sobel", Options{})
	if err := Validate(im.Words, fab.Dev); err != nil {
		t.Fatalf("clean stream rejected: %v", err)
	}
	// Flip one payload bit: CRC check must fail.
	corrupt := append([]uint32(nil), im.Words...)
	corrupt[len(corrupt)/2] ^= 1
	if err := Validate(corrupt, fab.Dev); err == nil {
		t.Error("corrupted stream validated")
	}
	// Wrong device.
	other := fpga.NewDevice("other", 0x11111111, 1, []fpga.ColumnKind{fpga.ColCLB})
	if err := Validate(im.Words, other); err == nil {
		t.Error("wrong-device stream validated")
	}
	// Truncated stream: no DESYNC.
	if err := Validate(im.Words[:len(im.Words)-8], fab.Dev); err == nil {
		t.Error("truncated stream validated")
	}
}

func TestWordsBytesRoundTrip(t *testing.T) {
	f := func(words []uint32) bool {
		b := WordsToBytes(words)
		back, err := BytesToWords(b)
		if err != nil || len(back) != len(words) {
			return false
		}
		for i := range words {
			if back[i] != words[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := BytesToWords([]byte{1, 2, 3}); err == nil {
		t.Error("unaligned bytes accepted")
	}
}

func TestCompressRoundTripQuick(t *testing.T) {
	f := func(words []uint32) bool {
		back, err := Decompress(Compress(words))
		if err != nil || len(back) != len(words) {
			return false
		}
		for i := range words {
			if back[i] != words[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCompressRuns(t *testing.T) {
	// A long constant run must compress dramatically.
	words := make([]uint32, 10000)
	c := Compress(words)
	if len(c) > 500 {
		t.Errorf("10000 zero words compressed to %d bytes", len(c))
	}
	back, err := Decompress(c)
	if err != nil || len(back) != len(words) {
		t.Fatalf("decompress: %v, %d words", err, len(back))
	}
}

func TestCompressRealBitstream(t *testing.T) {
	fab, part := defaultSetup(t)
	im, _ := Partial(fab.Dev, part, "sobel", Options{PadToBytes: DefaultBitstreamBytes})
	c := Compress(im.Words)
	if len(c) >= im.SizeBytes() {
		t.Errorf("compression grew the stream: %d -> %d", im.SizeBytes(), len(c))
	}
	back, err := Decompress(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(im.Words) {
		t.Fatalf("length changed: %d -> %d", len(im.Words), len(back))
	}
	for i := range back {
		if back[i] != im.Words[i] {
			t.Fatalf("word %d changed", i)
		}
	}
}

func TestDecompressErrors(t *testing.T) {
	if _, err := Decompress([]byte{1, 2, 3, 4, 5}); err != ErrNotCompressed {
		t.Errorf("bad magic err = %v", err)
	}
	// Truncated literal payload.
	bad := append([]byte("RVCZ"), 0x01, 0xAA, 0xBB)
	if _, err := Decompress(bad); err == nil {
		t.Error("truncated stream accepted")
	}
	if IsCompressed([]byte("RVCZ....")) != true || IsCompressed([]byte("nope")) {
		t.Error("IsCompressed wrong")
	}
}

func TestBitFileRoundTrip(t *testing.T) {
	f := &BitFile{
		Design: "rp0_sobel_partial",
		Part:   "xc7k325tffg900-2",
		Date:   "2021/03/15",
		Time:   "12:00:00",
		Data:   []byte{0xAA, 0x99, 0x55, 0x66, 1, 2, 3, 4},
	}
	raw := f.MarshalBit()
	back, err := ParseBit(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Design != f.Design || back.Part != f.Part || back.Date != f.Date || back.Time != f.Time {
		t.Errorf("metadata round trip: %+v", back)
	}
	if !bytes.Equal(back.Data, f.Data) {
		t.Error("payload round trip failed")
	}
}

func TestStripHeader(t *testing.T) {
	raw := []byte{0xAA, 0x99, 0x55, 0x66, 9, 9, 9, 9}
	if !bytes.Equal(StripHeader(raw), raw) {
		t.Error("raw stream modified")
	}
	f := &BitFile{Design: "d", Part: "p", Date: "c", Time: "t", Data: raw}
	if !bytes.Equal(StripHeader(f.MarshalBit()), raw) {
		t.Error(".bit payload not extracted")
	}
}

func TestParseBitErrors(t *testing.T) {
	if _, err := ParseBit([]byte("garbage")); err == nil {
		t.Error("garbage accepted")
	}
	f := &BitFile{Design: "d", Part: "p", Date: "c", Time: "t", Data: []byte{1}}
	raw := f.MarshalBit()
	if _, err := ParseBit(raw[:len(raw)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestParseRandomWordsNeverPanics(t *testing.T) {
	f := func(words []uint32) bool {
		_, _ = Parse(words)
		withSync := append([]uint32{fpga.SyncWord}, words...)
		_, _ = Parse(withSync)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDecompressRandomNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Decompress(data)
		_, _ = Decompress(append([]byte("RVCZ"), data...))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package bitstream

import (
	"bytes"
	"testing"
)

func TestFlipBit(t *testing.T) {
	src := []byte{0x00, 0xFF, 0x10, 0x20}
	out := FlipBit(src, 9) // bit 1 of byte 1
	if !bytes.Equal(src, []byte{0x00, 0xFF, 0x10, 0x20}) {
		t.Fatal("FlipBit mutated its input")
	}
	if out[1] != 0xFD {
		t.Fatalf("byte 1 = %#x, want 0xFD", out[1])
	}
	if out[0] != 0x00 || out[2] != 0x10 || out[3] != 0x20 {
		t.Fatal("FlipBit touched other bytes")
	}
	if !bytes.Equal(FlipBit(src, len(src)*8), src) {
		t.Fatal("out-of-range flip must be a no-op copy")
	}
}

func TestTruncate(t *testing.T) {
	src := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct{ n, want int }{
		{10, 8}, // rounds down to a whole word
		{8, 8},
		{7, 4},
		{3, 0},
		{-1, 0},
		{100, 8},
	} {
		out := Truncate(src, tc.n)
		if len(out) != tc.want {
			t.Errorf("Truncate(%d) kept %d bytes, want %d", tc.n, len(out), tc.want)
		}
		if !bytes.Equal(out, src[:len(out)]) {
			t.Errorf("Truncate(%d) altered the prefix", tc.n)
		}
	}
	if len(src) != 10 {
		t.Fatal("Truncate mutated its input")
	}
}

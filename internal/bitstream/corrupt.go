package bitstream

// Fault-campaign helpers: controlled damage applied to a serialized
// bitstream between staging and the configuration engine. Both return
// copies — the pristine image is never touched, so a retry can always
// re-stage it.

// FlipBit returns a copy of data with one bit inverted. Bit 0 is the
// least-significant bit of data[0]; out-of-range offsets return an
// unmodified copy.
func FlipBit(data []byte, bit int) []byte {
	out := append([]byte(nil), data...)
	if bit >= 0 && bit/8 < len(out) {
		out[bit/8] ^= 1 << (bit % 8)
	}
	return out
}

// Truncate returns a copy of data cut to at most n bytes, rounded down
// to a whole 32-bit configuration word (the ICAP consumes whole words;
// a transfer never ends mid-word).
func Truncate(data []byte, n int) []byte {
	if n < 0 {
		n = 0
	}
	if n > len(data) {
		n = len(data)
	}
	n &^= 3
	return append([]byte(nil), data[:n]...)
}

// Package bitstream generates, serialises, parses and compresses the
// partial bitstreams that flow through the RV-CAP data path. It plays
// the role Vivado's write_bitstream plays for the paper: given a
// reconfigurable partition and a module identity, it emits a
// 7-series-style configuration word stream (sync word, IDCODE check,
// WCFG, per-run FAR + FDRI bursts with trailing pad frames, CRC check,
// DESYNC) that the fpga.ICAP engine accepts and that activates the
// module in the partition.
//
// Frame payloads are generated deterministically from the
// (partition, module) identity, so a bit-exact load reproduces the
// module's registered content signature — the model's equivalent of
// "the right logic is now in the fabric".
package bitstream

import (
	"fmt"
	"hash/fnv"
	"sort"

	"rvcap/internal/fpga"
)

// Image is a generated partial bitstream together with its provenance.
type Image struct {
	// Module and Partition identify what the image loads and where.
	Module    string
	Partition string
	// Words is the raw configuration word stream fed to the ICAP.
	Words []uint32
	// Signature is the partition content signature a successful load
	// produces; register it with fpga.Fabric.RegisterModule.
	Signature uint64
	// Frames is the number of logic frames the image writes (excluding
	// per-run pad frames).
	Frames int
}

// Options tunes image generation.
type Options struct {
	// PadToBytes pads the stream with NOP packets (before the final
	// DESYNC) until the serialised size reaches this many bytes. The
	// default module images pad to the paper's reported 650 892-byte
	// partial bitstream so size-derived timing matches §IV-A. Zero
	// disables padding.
	PadToBytes int
	// SkipCRC omits the CRC check word (some flows disable CRC; the
	// RT-ICAP/safety ablations use this).
	SkipCRC bool
}

// DefaultBitstreamBytes is the partial bitstream size the paper reports
// for its RP ("The partial bitstream size is 650892 bytes", §IV-A).
const DefaultBitstreamBytes = 650892

// frameContent derives the deterministic payload of one frame of a
// module placed in a partition (a splitmix64 stream seeded from the
// identity), standing in for the synthesised logic bits. Real
// configuration frames are sparse — most routing/LUT bits of any one
// design are zero, in runs — so the generator interleaves zero runs
// with data runs (roughly half the words end up zero). That preserves
// the compressibility structure the RT-ICAP compression study [15]
// depends on, while keeping every module's content unique.
func frameContent(partition, module string, frameIdx int) []uint32 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s/%d", partition, module, frameIdx)
	state := h.Sum64()
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
		z = (z ^ z>>27) * 0x94D049BB133111EB
		return z ^ z>>31
	}
	words := make([]uint32, fpga.FrameWords)
	i := 0
	zeroRun := frameIdx%2 == 0
	for i < len(words) {
		v := next()
		runLen := 2 + int(v%12)
		if zeroRun {
			i += runLen // leave zeros
		} else {
			for j := 0; j < runLen && i < len(words); j++ {
				words[i] = uint32(next())
				i++
			}
		}
		zeroRun = !zeroRun
	}
	return words
}

// builder accumulates a configuration word stream while tracking the CRC
// exactly as the fpga.ICAP engine computes it.
type builder struct {
	words  []uint32
	crc    uint32
	crcBuf []byte // per-frame scratch for batched CRC folding
}

func (b *builder) raw(ws ...uint32) { b.words = append(b.words, ws...) }

func (b *builder) write(reg uint32, vals ...uint32) {
	b.raw(fpga.Type1Write(reg, len(vals)))
	for _, v := range vals {
		b.raw(v)
		if reg != fpga.RegCRC {
			b.crc = fpga.UpdateCRC(b.crc, reg, v)
		}
	}
}

func (b *builder) cmd(c uint32) {
	b.write(fpga.RegCMD, c)
	if c == fpga.CmdRCRC {
		b.crc = 0
	}
}

func (b *builder) fdriType2(frames [][]uint32) {
	b.raw(fpga.Type1Write(fpga.RegFDRI, 0))
	n := 0
	for _, f := range frames {
		n += len(f)
	}
	b.raw(fpga.Type2Write(n))
	for _, f := range frames {
		b.words = append(b.words, f...)
		// Fold the frame's CRC bytes in one batched call (the byte run
		// UpdateCRC would produce word by word).
		b.crcBuf = b.crcBuf[:0]
		for _, w := range f {
			b.crcBuf = append(b.crcBuf, fpga.RegFDRI, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
		}
		b.crc = fpga.UpdateCRCBytes(b.crc, b.crcBuf)
	}
}

// emitStream builds the full configuration word stream for the given
// frame runs, fetching each frame's payload through content. It is the
// shared core of Partial and BlankFrames.
func emitStream(dev *fpga.Device, runs [][2]int, content func(idx int) []uint32, opts Options) ([]uint32, int, error) {
	var b builder
	// Standard preamble: dummies, bus-width detect, sync.
	b.raw(fpga.DummyWord, fpga.DummyWord, fpga.DummyWord, fpga.DummyWord,
		fpga.BusWidthSync, fpga.BusWidthWord, fpga.DummyWord, fpga.DummyWord,
		fpga.SyncWord, fpga.NoopWord)
	b.cmd(fpga.CmdRCRC)
	b.raw(fpga.NoopWord, fpga.NoopWord)
	b.write(fpga.RegIDCODE, dev.IDCode)
	b.cmd(fpga.CmdWCFG)
	b.raw(fpga.NoopWord)

	frames := 0
	for _, run := range runs {
		far, err := dev.IndexToFAR(run[0])
		if err != nil {
			return nil, 0, fmt.Errorf("bitstream: %v", err)
		}
		b.write(fpga.RegFAR, far)
		b.raw(fpga.NoopWord)
		var payload [][]uint32
		for idx := run[0]; idx <= run[1]; idx++ {
			payload = append(payload, content(idx))
			frames++
		}
		payload = append(payload, make([]uint32, fpga.FrameWords)) // pad frame
		b.fdriType2(payload)
	}

	b.cmd(fpga.CmdLFRM)
	if !opts.SkipCRC {
		b.write(fpga.RegCRC, b.crc)
	}
	b.raw(fpga.NoopWord, fpga.NoopWord)
	b.cmd(fpga.CmdStart)

	// Pad with NOPs ahead of DESYNC to reach the requested file size
	// (Vivado images carry similar command padding).
	const trailerWords = 2 /* desync cmd packet */ + 4 /* trailing noops */
	if opts.PadToBytes > 0 {
		want := opts.PadToBytes / 4
		have := len(b.words) + trailerWords
		if want < have {
			return nil, 0, fmt.Errorf("bitstream: PadToBytes %d smaller than stream (%d bytes)",
				opts.PadToBytes, have*4)
		}
		for i := have; i < want; i++ {
			b.raw(fpga.NoopWord)
		}
	}
	b.cmd(fpga.CmdDesync)
	b.raw(fpga.NoopWord, fpga.NoopWord, fpga.NoopWord, fpga.NoopWord)
	return b.words, frames, nil
}

// Partial generates the partial bitstream that loads module into part on
// dev. The stream writes each contiguous frame run of the partition as
// one FAR + FDRI burst with a trailing pad frame (the 7-series frame
// buffer requires N+1 frames of data to write N frames).
func Partial(dev *fpga.Device, part *fpga.Partition, module string, opts Options) (*Image, error) {
	content := make(map[int][]uint32, part.NumFrames())
	for _, idx := range part.Frames() {
		content[idx] = frameContent(part.Name, module, idx)
	}
	words, frames, err := emitStream(dev, part.Runs(),
		func(idx int) []uint32 { return content[idx] }, opts)
	if err != nil {
		return nil, fmt.Errorf("bitstream: partition %s: %v", part.Name, err)
	}
	sig := fpga.HashFrames(func(idx int) []uint32 { return content[idx] }, part.Frames())
	return &Image{
		Module:    module,
		Partition: part.Name,
		Words:     words,
		Signature: sig,
		Frames:    frames,
	}, nil
}

// BlankFrames generates the blanking bitstream for the given linear
// frame indices: all-zero content over every contiguous run, with the
// same preamble, pad-frame and CRC structure as Partial. Loading it
// clears whatever logic the span realised — the placement layer blanks
// a vacated span after relocating or destroying the region that covered
// it. The frames need not belong to any partition.
func BlankFrames(dev *fpga.Device, frames []int, opts Options) (*Image, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("bitstream: blanking an empty frame set")
	}
	sorted := append([]int(nil), frames...)
	sort.Ints(sorted)
	var runs [][2]int
	for i := 0; i < len(sorted); {
		j := i
		for j+1 < len(sorted) && sorted[j+1] == sorted[j]+1 {
			j++
		}
		runs = append(runs, [2]int{sorted[i], sorted[j]})
		i = j + 1
	}
	zero := make([]uint32, fpga.FrameWords)
	words, n, err := emitStream(dev, runs, func(int) []uint32 { return zero }, opts)
	if err != nil {
		return nil, err
	}
	sig := fpga.HashFrames(func(int) []uint32 { return zero }, sorted)
	return &Image{Module: "", Partition: "", Words: words, Signature: sig, Frames: n}, nil
}

// Register makes the fabric recognise the image's content signature as
// its module, so a successful load activates it.
func Register(fab *fpga.Fabric, im *Image) {
	fab.RegisterModule(im.Module, im.Signature)
}

// SizeBytes returns the serialised size of the image.
func (im *Image) SizeBytes() int { return len(im.Words) * 4 }

// Bytes serialises the word stream big-endian (configuration words are
// defined most-significant-bit first; real .bin files additionally
// bit-swap within bytes, which no model here depends on).
func (im *Image) Bytes() []byte {
	return WordsToBytes(im.Words)
}

// WordsToBytes serialises configuration words big-endian.
func WordsToBytes(words []uint32) []byte {
	out := make([]byte, len(words)*4)
	for i, w := range words {
		out[i*4] = byte(w >> 24)
		out[i*4+1] = byte(w >> 16)
		out[i*4+2] = byte(w >> 8)
		out[i*4+3] = byte(w)
	}
	return out
}

// BytesToWords deserialises a big-endian word stream. The byte count
// must be word-aligned.
func BytesToWords(b []byte) ([]uint32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("bitstream: %d bytes is not word-aligned", len(b))
	}
	words := make([]uint32, len(b)/4)
	for i := range words {
		words[i] = uint32(b[i*4])<<24 | uint32(b[i*4+1])<<16 | uint32(b[i*4+2])<<8 | uint32(b[i*4+3])
	}
	return words, nil
}

package baselines

import (
	"testing"

	"rvcap/internal/bitstream"
	"rvcap/internal/fpga"
	"rvcap/internal/sim"
)

// paper Table II throughputs (MB/s) for the modelled rows.
var paperThroughput = map[string]float64{
	"Vipin et al.":      399.8,
	"ZyCAP":             382,
	"Di Carlo et al.":   395.4,
	"AC_ICAP":           380.47,
	"RT-ICAP":           382.2,
	"PCAP":              128,
	"Xilinx PRC":        396.5,
	"Xilinx AXI_HWICAP": 14.3,
}

func setup(t *testing.T) (*sim.Kernel, *fpga.Fabric, *fpga.Partition, *bitstream.Image) {
	t.Helper()
	k := sim.NewKernel()
	fab := fpga.NewFabric(fpga.NewKintex7())
	part, err := fpga.AddDefaultPartition(fab)
	if err != nil {
		t.Fatal(err)
	}
	im, err := bitstream.Partial(fab.Dev, part, "sobel",
		bitstream.Options{PadToBytes: bitstream.DefaultBitstreamBytes})
	if err != nil {
		t.Fatal(err)
	}
	bitstream.Register(fab, im)
	return k, fab, part, im
}

func TestThroughputsMatchTableII(t *testing.T) {
	for _, s := range All {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			k, fab, part, im := setup(t)
			icap := fpga.NewICAP(fab)
			mbps := s.MeasureThroughput(k, icap, im.Words)
			want := paperThroughput[s.Name]
			if mbps < want*0.99 || mbps > want*1.01 {
				t.Errorf("throughput = %.2f MB/s, want %.2f +/- 1%% (Table II)", mbps, want)
			}
			if icap.Err() != nil {
				t.Errorf("ICAP error: %v", icap.Err())
			}
			if part.Active() != "sobel" {
				t.Errorf("module not activated by %s transfer", s.Name)
			}
		})
	}
}

func TestAllRowsPresentWithMetadata(t *testing.T) {
	if len(All) != 8 {
		t.Fatalf("expected 8 prior-work rows, have %d", len(All))
	}
	withDrivers := 0
	for _, s := range All {
		if s.FreqMHz != 100 {
			t.Errorf("%s: freq %d, all Table II rows run at 100 MHz", s.Name, s.FreqMHz)
		}
		if s.Processor == "" || s.Ref == "" {
			t.Errorf("%s: missing metadata", s.Name)
		}
		if s.CustomDrivers {
			withDrivers++
		}
	}
	// ZyCAP, Di Carlo and RT-ICAP ship custom drivers in Table II.
	if withDrivers != 3 {
		t.Errorf("custom-driver rows = %d, want 3", withDrivers)
	}
}

func TestPCAPHasNoFabricFootprint(t *testing.T) {
	s, err := ByName("PCAP")
	if err != nil {
		t.Fatal(err)
	}
	if s.Resources != (fpga.Resources{}) {
		t.Errorf("PCAP resources = %v, want zero (hard block)", s.Resources)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestSafeModeScansBeforeTransfer(t *testing.T) {
	// Di Carlo's safe mode costs one extra pass; transfer time with the
	// scan must exceed the plain transfer by ~len(words) cycles.
	k, fab, _, im := setup(t)
	s, _ := ByName("Di Carlo et al.")
	var withScan, without sim.Time
	k.Go("scan", func(p *sim.Proc) {
		withScan = s.Transfer(p, fpga.NewICAP(fab), im.Words)
	})
	k.Run()
	s.SafeMode = false
	k2 := sim.NewKernel()
	fab2 := fpga.NewFabric(fpga.NewKintex7())
	k2.Go("plain", func(p *sim.Proc) {
		without = s.Transfer(p, fpga.NewICAP(fab2), im.Words)
	})
	k2.Run()
	delta := int64(withScan) - int64(without)
	if delta < int64(len(im.Words)) {
		t.Errorf("safe-mode overhead = %d cycles, want >= %d", delta, len(im.Words))
	}
}

func TestRVCAPBeatsPriorRISCVOptions(t *testing.T) {
	// The paper's claim: no prior controller targets RISC-V, and among
	// all rows only Vipin exceeds RV-CAP's 398.1 MB/s (by 1.9 MB/s,
	// §IV-C). Verify the modelled field keeps that ordering.
	k, fab, _, im := setup(t)
	_ = fab
	const rvcap = 398.1
	above := 0
	for _, s := range All {
		k = sim.NewKernel()
		fab := fpga.NewFabric(fpga.NewKintex7())
		part, _ := fpga.AddDefaultPartition(fab)
		_ = part
		mbps := s.MeasureThroughput(k, fpga.NewICAP(fab), im.Words)
		if mbps > rvcap {
			above++
			if s.Name != "Vipin et al." {
				t.Errorf("%s (%.1f MB/s) unexpectedly exceeds RV-CAP", s.Name, mbps)
			}
		}
	}
	if above != 1 {
		t.Errorf("%d controllers exceed RV-CAP, want exactly 1 (Vipin)", above)
	}
}

// Package baselines provides executable models of the state-of-the-art
// DPR controllers the paper compares against in Table II. Each baseline
// drives the same simulated ICAP/configuration engine as RV-CAP, but
// paces the word stream at its published effective rate and carries its
// published resource footprint, so the comparison table is regenerated
// by running transfers rather than by quoting numbers.
//
// The two RISC-V rows of Table II (RV-CAP itself and AXI_HWICAP with
// RV64GC) are NOT modelled here — they are measured end-to-end on the
// full simulated SoC by the experiments package; this package covers the
// eight prior-work rows.
package baselines

import (
	"fmt"

	"rvcap/internal/fpga"
	"rvcap/internal/sim"
)

// Spec describes one prior-work DPR controller.
type Spec struct {
	// Name and Ref identify the controller and its citation in the
	// paper's Table II.
	Name string
	Ref  string
	// Processor is the SoC processor managing DPR on the original
	// platform.
	Processor string
	// CustomDrivers reports whether the work ships custom software
	// drivers for DPR management (the checkmark column).
	CustomDrivers bool
	// Resources is the published controller footprint.
	Resources fpga.Resources
	// FreqMHz is the controller clock (100 MHz for every row).
	FreqMHz int

	// Data-path model: cycles per 32-bit configuration word as a
	// rational (calibrated: 400 MB/s divided by the published
	// throughput), plus a fixed per-transfer setup cost.
	cpwNum, cpwDen int
	setup          sim.Time

	// SafeMode validates the bitstream (CRC scan) before committing it
	// to the ICAP, as the Di Carlo et al. controller does.
	SafeMode bool
}

// All lists the eight prior-work rows of Table II in paper order.
var All = []Spec{
	{
		Name: "Vipin et al.", Ref: "[12]", Processor: "MicroBlaze",
		Resources: fpga.Resources{LUT: 586, FF: 672, BRAM: 8},
		FreqMHz:   100,
		// 399.8 MB/s: a DMA master saturating the ICAP with only a
		// per-transfer setup gap.
		cpwNum: 2001, cpwDen: 2000, setup: 120,
	},
	{
		Name: "ZyCAP", Ref: "[13]", Processor: "ARM", CustomDrivers: true,
		Resources: fpga.Resources{LUT: 620, FF: 806, BRAM: 0},
		FreqMHz:   100,
		// 382 MB/s: HP-port AXI master with inter-burst stalls.
		cpwNum: 1047, cpwDen: 1000, setup: 150,
	},
	{
		Name: "Di Carlo et al.", Ref: "[14]", Processor: "LEON3", CustomDrivers: true,
		Resources: fpga.Resources{LUT: 588, FF: 278, BRAM: 1},
		FreqMHz:   100,
		// 395.4 MB/s with the safe-DPR CRC scan ahead of the transfer.
		cpwNum: 1012, cpwDen: 1000, setup: 200, SafeMode: true,
	},
	{
		Name: "AC_ICAP", Ref: "[16]", Processor: "MicroBlaze",
		Resources: fpga.Resources{LUT: 1286, FF: 1193, BRAM: 22},
		FreqMHz:   100,
		// 380.47 MB/s from on-chip BRAM staging.
		cpwNum: 10513, cpwDen: 10000, setup: 180,
	},
	{
		Name: "RT-ICAP", Ref: "[15]", Processor: "Patmos", CustomDrivers: true,
		Resources: fpga.Resources{LUT: 289, FF: 105, BRAM: 0},
		FreqMHz:   100,
		// 382.2 MB/s, time-predictable word pump (optionally fed from a
		// compressed image; see TransferCompressed).
		cpwNum: 10466, cpwDen: 10000, setup: 100,
	},
	{
		Name: "PCAP", Ref: "[24]", Processor: "ARM",
		Resources: fpga.Resources{},
		FreqMHz:   100,
		// 128 MB/s: the Zynq processor configuration access port — no
		// fabric resources, but a quarter of the ICAP bandwidth.
		cpwNum: 3125, cpwDen: 1000, setup: 400,
	},
	{
		Name: "Xilinx PRC", Ref: "[25]", Processor: "ARM",
		Resources: fpga.Resources{LUT: 1171, FF: 1203, BRAM: 0},
		FreqMHz:   100,
		// 396.5 MB/s: the vendor partial reconfiguration controller.
		cpwNum: 10088, cpwDen: 10000, setup: 160,
	},
	{
		Name: "Xilinx AXI_HWICAP", Ref: "[26]", Processor: "ARM",
		Resources: fpga.Resources{LUT: 538, FF: 688, BRAM: 0},
		FreqMHz:   100,
		// 14.3 MB/s: ARM-driven keyhole writes (faster than the Ariane
		// deployment because the Zynq PS issues posted writes).
		cpwNum: 27972, cpwDen: 1000, setup: 300,
	},
}

// ByName returns the spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range All {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("baselines: unknown controller %q", name)
}

// Transfer feeds words into the ICAP at the controller's modelled rate,
// returning the transfer time in cycles. It must be called from within
// a simulation process.
func (s Spec) Transfer(p *sim.Proc, icap *fpga.ICAP, words []uint32) sim.Time {
	start := p.Now()
	p.Sleep(s.setup)
	if s.SafeMode {
		// The safe controller streams the image through its CRC/ECC
		// checker before committing: one pass at one word per cycle.
		p.Sleep(sim.Time(len(words)))
	}
	// Words are pumped in chunks: the ICAP model is functional, so the
	// pacing can be charged per chunk without changing the aggregate
	// rate (exact rational accounting, no drift).
	const chunk = 256
	credit := 0
	for i := 0; i < len(words); i += chunk {
		end := i + chunk
		if end > len(words) {
			end = len(words)
		}
		for _, w := range words[i:end] {
			icap.WriteWord(w)
		}
		credit += s.cpwNum * (end - i)
		p.Sleep(sim.Time(credit / s.cpwDen))
		credit %= s.cpwDen
	}
	return p.Now() - start
}

// MeasureThroughput runs a transfer of words on a fresh process and
// returns MB/s. The safe-mode pre-scan is excluded, matching how the
// original papers report pure reconfiguration throughput.
func (s Spec) MeasureThroughput(k *sim.Kernel, icap *fpga.ICAP, words []uint32) float64 {
	var mbps float64
	k.Go("baseline."+s.Name, func(p *sim.Proc) {
		pre := s.SafeMode
		s.SafeMode = false
		took := s.Transfer(p, icap, words)
		s.SafeMode = pre
		mbps = sim.MBPerSec(len(words)*4, took)
	})
	k.Run()
	return mbps
}

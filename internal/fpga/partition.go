package fpga

import (
	"fmt"
	"sort"
)

// Partition is a reconfigurable partition (RP): a reserved set of
// configuration frames whose contents can be swapped at runtime while
// the static region keeps running. Reserve is the advertised resource
// budget of the RP (what the paper's Table III percentages are computed
// against); Span is the fabric physically covered by its frames, which
// is never smaller than the reserve (pblocks include routing margin).
type Partition struct {
	Name    string
	Reserve Resources
	Span    Resources

	frames   []int
	frameSet map[int]struct{}
	active   string
	loads    uint64
	touched  bool // scratch for endOfSequence's dirty-frame sweep
}

// Frames returns the partition's sorted linear frame indices.
func (p *Partition) Frames() []int { return p.frames }

// NumFrames returns the partition's frame count.
func (p *Partition) NumFrames() int { return len(p.frames) }

// Contains reports whether frame idx belongs to the partition.
func (p *Partition) Contains(idx int) bool {
	_, ok := p.frameSet[idx]
	return ok
}

// Active returns the name of the currently realised module, or "" when
// the partition holds no (or corrupted/unknown) configuration.
func (p *Partition) Active() string { return p.active }

// Loads returns how many successful module activations the partition has
// seen.
func (p *Partition) Loads() uint64 { return p.loads }

// Runs returns the partition's frames grouped into maximal runs of
// consecutive linear indices — the FDRI bursts a partial bitstream for
// this partition consists of.
func (p *Partition) Runs() [][2]int {
	var runs [][2]int
	for i := 0; i < len(p.frames); {
		j := i
		for j+1 < len(p.frames) && p.frames[j+1] == p.frames[j]+1 {
			j++
		}
		runs = append(runs, [2]int{p.frames[i], p.frames[j]})
		i = j + 1
	}
	return runs
}

// Fabric ties the device geometry, the configuration memory, the ICAP
// engine's view of partitions, and the module-signature registry
// together. When a configuration sequence completes (DESYNC), every
// partition whose frames were touched is re-evaluated: a bit-exact load
// of a registered module's frames activates that module; anything else
// (partial load, corruption) leaves the partition inactive.
type Fabric struct {
	Dev *Device
	Mem *ConfigMemory

	parts  []*Partition
	byIdx  map[int]*Partition
	sigs   map[uint64]string
	onLoad []func(p *Partition, module string)
}

// NewFabric returns a fabric for dev with empty configuration memory.
func NewFabric(dev *Device) *Fabric {
	return &Fabric{
		Dev:   dev,
		Mem:   NewConfigMemory(dev),
		byIdx: make(map[int]*Partition),
		sigs:  make(map[uint64]string),
	}
}

// AddPartition reserves the given frames as a reconfigurable partition.
// Frames must be inside the device and not belong to another partition,
// and the name must not collide with a live partition — partitions are
// created and destroyed at runtime by the placement layer, so both
// invariants are enforced here, at the fabric level, rather than in any
// one caller.
func (f *Fabric) AddPartition(name string, frames []int, reserve, span Resources) (*Partition, error) {
	if f.Partition(name) != nil {
		return nil, fmt.Errorf("fpga: partition %s already exists", name)
	}
	sorted := append([]int(nil), frames...)
	sort.Ints(sorted)
	p := &Partition{
		Name:     name,
		Reserve:  reserve,
		Span:     span,
		frames:   sorted,
		frameSet: make(map[int]struct{}, len(sorted)),
	}
	for i, idx := range sorted {
		if idx < 0 || idx >= f.Dev.TotalFrames() {
			return nil, fmt.Errorf("fpga: partition %s frame %d outside device", name, idx)
		}
		if i > 0 && sorted[i-1] == idx {
			return nil, fmt.Errorf("fpga: partition %s has duplicate frame %d", name, idx)
		}
		if other, taken := f.byIdx[idx]; taken {
			return nil, fmt.Errorf("fpga: frame %d already in partition %s", idx, other.Name)
		}
		p.frameSet[idx] = struct{}{}
	}
	for _, idx := range sorted {
		f.byIdx[idx] = p
	}
	f.parts = append(f.parts, p)
	return p, nil
}

// Partitions returns the fabric's partitions in creation order.
func (f *Fabric) Partitions() []*Partition { return f.parts }

// Partition returns the partition with the given name, or nil.
func (f *Fabric) Partition(name string) *Partition {
	for _, p := range f.parts {
		if p.Name == name {
			return p
		}
	}
	return nil
}

func (f *Fabric) partOf(idx int) *Partition { return f.byIdx[idx] }

// Owner returns the partition owning frame idx, or nil for static (or
// out-of-device) frames. The frame-granular allocator scans it to find
// free fabric.
func (f *Fabric) Owner(idx int) *Partition { return f.byIdx[idx] }

// RemovePartition releases p's frames back to the static fabric and
// forgets the partition. The configuration memory is untouched — the
// caller blanks the vacated span (or lets the next load overwrite it);
// what is removed is only the reservation. Removing a partition that is
// not on this fabric is an error.
func (f *Fabric) RemovePartition(p *Partition) error {
	at := -1
	for i, q := range f.parts {
		if q == p {
			at = i
			break
		}
	}
	if at < 0 {
		return fmt.Errorf("fpga: partition %s not on this fabric", p.Name)
	}
	for _, idx := range p.frames {
		delete(f.byIdx, idx)
	}
	f.parts = append(f.parts[:at], f.parts[at+1:]...)
	return nil
}

// RegisterModule associates a frame-content signature with a module
// name. The bitstream builder computes the signature when it generates a
// module's partial bitstream.
func (f *Fabric) RegisterModule(name string, sig uint64) {
	f.sigs[sig] = name
}

// OnModuleLoaded registers a callback fired whenever a partition
// activates a module at the end of a configuration sequence.
func (f *Fabric) OnModuleLoaded(fn func(p *Partition, module string)) {
	f.onLoad = append(f.onLoad, fn)
}

// endOfSequence is called by the ICAP engine on DESYNC.
func (f *Fabric) endOfSequence() {
	dirty := f.Mem.TakeDirty()
	for _, idx := range dirty {
		if p := f.byIdx[idx]; p != nil {
			p.touched = true
		}
	}
	for _, p := range f.parts { // deterministic order
		if !p.touched {
			continue
		}
		p.touched = false
		f.evaluate(p)
	}
}

func (f *Fabric) evaluate(p *Partition) {
	for _, idx := range p.frames {
		if !f.Mem.Configured(idx) {
			p.active = ""
			return
		}
	}
	sig := f.Mem.signature(p.frames)
	name, ok := f.sigs[sig]
	if !ok {
		p.active = ""
		return
	}
	p.active = name
	p.loads++
	for _, fn := range f.onLoad {
		fn(p, name)
	}
}

// Signature computes the current content signature of p's frames,
// exposed for the bitstream builder and tests.
func (f *Fabric) Signature(p *Partition) uint64 { return f.Mem.signature(p.frames) }

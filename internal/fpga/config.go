package fpga

import (
	"fmt"
)

// ConfigMemory is the device's configuration memory: one 101-word frame
// per linear frame index. Frames are what the ICAP engine reads and
// writes; their contents define the logic realised in the fabric.
type ConfigMemory struct {
	dev    *Device
	frames [][]uint32 // lazily allocated; nil = never configured
	// Dirty tracking as a mark array plus an index list: a frame write
	// is a bool test and at most one append, and TakeDirty hands back
	// the list without building a map — a reconfiguration-rate hot path
	// that must not allocate per frame.
	dirtyMark  []bool
	dirtyList  []int
	spareDirty []int // previous list, recycled on the next TakeDirty
	writes     uint64
}

// NewConfigMemory returns an all-unconfigured configuration memory.
func NewConfigMemory(dev *Device) *ConfigMemory {
	return &ConfigMemory{
		dev:       dev,
		frames:    make([][]uint32, dev.TotalFrames()),
		dirtyMark: make([]bool, dev.TotalFrames()),
	}
}

// WriteFrame stores one frame at the linear index.
func (m *ConfigMemory) WriteFrame(idx int, words []uint32) error {
	if idx < 0 || idx >= len(m.frames) {
		return fmt.Errorf("fpga: frame write outside device: index %d of %d", idx, len(m.frames))
	}
	if len(words) != FrameWords {
		return fmt.Errorf("fpga: frame write of %d words, want %d", len(words), FrameWords)
	}
	if m.frames[idx] == nil {
		m.frames[idx] = make([]uint32, FrameWords)
	}
	copy(m.frames[idx], words)
	if !m.dirtyMark[idx] {
		m.dirtyMark[idx] = true
		m.dirtyList = append(m.dirtyList, idx)
	}
	m.writes++
	return nil
}

// ReadFrame returns a copy of the frame at idx; unconfigured frames read
// as zeros, mirroring a cleared device.
func (m *ConfigMemory) ReadFrame(idx int) ([]uint32, error) {
	if idx < 0 || idx >= len(m.frames) {
		return nil, fmt.Errorf("fpga: frame read outside device: index %d of %d", idx, len(m.frames))
	}
	out := make([]uint32, FrameWords)
	copy(out, m.frames[idx])
	return out, nil
}

// Configured reports whether the frame at idx was ever written.
func (m *ConfigMemory) Configured(idx int) bool {
	return idx >= 0 && idx < len(m.frames) && m.frames[idx] != nil
}

// FrameWrites returns the total number of frame writes performed.
func (m *ConfigMemory) FrameWrites() uint64 { return m.writes }

// TakeDirty returns the frames written since the last call, in first-
// write order, and resets the tracking. The fabric uses it to
// re-evaluate partitions at the end of a configuration sequence. The
// returned slice is valid until the call after next: the two index
// lists alternate so the steady state allocates nothing.
func (m *ConfigMemory) TakeDirty() []int {
	d := m.dirtyList
	for _, idx := range d {
		m.dirtyMark[idx] = false
	}
	m.dirtyList = m.spareDirty[:0]
	m.spareDirty = d
	return d
}

// HashFrames hashes frame contents fetched through get (nil frames hash
// as zeros) over the given linear indices, in order. It is the model's
// stand-in for "what logic do these frames realise": a bit-exact load of
// a module's frames produces the module's registered signature, anything
// else does not. The bitstream builder uses the same function to compute
// the signature its generated image will produce.
func HashFrames(get func(idx int) []uint32, frames []int) uint64 {
	// FNV-1a 64, inlined over the little-endian bytes of each word:
	// bit-identical to hashing through hash/fnv, without the interface
	// dispatch and per-word Write buffering (this runs once per frame
	// word on every reconfiguration).
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, idx := range frames {
		f := get(idx)
		for w := 0; w < FrameWords; w++ {
			var v uint32
			if f != nil {
				v = f[w]
			}
			h = (h ^ uint64(v&0xff)) * prime64
			h = (h ^ uint64((v>>8)&0xff)) * prime64
			h = (h ^ uint64((v>>16)&0xff)) * prime64
			h = (h ^ uint64(v>>24)) * prime64
		}
	}
	return h
}

// signature hashes the current contents of the given frames.
func (m *ConfigMemory) signature(frames []int) uint64 {
	return HashFrames(func(idx int) []uint32 { return m.frames[idx] }, frames)
}

package fpga

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// 7-series configuration packet constants (UG470 ch. 5). The bitstream
// writer in internal/bitstream uses the same constants, so the two sides
// stay consistent by construction.
const (
	SyncWord     uint32 = 0xAA995566
	DummyWord    uint32 = 0xFFFFFFFF
	BusWidthSync uint32 = 0x000000BB
	BusWidthWord uint32 = 0x11220044
	NoopWord     uint32 = 0x20000000 // type-1 NOP packet
)

// Configuration register addresses.
const (
	RegCRC    = 0x00
	RegFAR    = 0x01
	RegFDRI   = 0x02
	RegFDRO   = 0x03
	RegCMD    = 0x04
	RegCTL0   = 0x05
	RegMASK   = 0x06
	RegSTAT   = 0x07
	RegLOUT   = 0x08
	RegCOR0   = 0x09
	RegMFWR   = 0x0A
	RegCBC    = 0x0B
	RegIDCODE = 0x0C
	RegAXSS   = 0x0D
)

// CMD register command codes.
const (
	CmdNull   = 0x0
	CmdWCFG   = 0x1
	CmdMFW    = 0x2
	CmdLFRM   = 0x3 // DGHIGH/LFRM: last frame
	CmdRCFG   = 0x4
	CmdStart  = 0x5
	CmdRCAP   = 0x6
	CmdRCRC   = 0x7
	CmdAGHigh = 0x8
	CmdDesync = 0xD
)

// Type1Write builds a type-1 write packet header for count words to reg.
func Type1Write(reg uint32, count int) uint32 {
	return 1<<29 | 2<<27 | (reg&0x3FFF)<<13 | uint32(count)&0x7FF
}

// Type1Read builds a type-1 read packet header.
func Type1Read(reg uint32, count int) uint32 {
	return 1<<29 | 1<<27 | (reg&0x3FFF)<<13 | uint32(count)&0x7FF
}

// Type2Write builds a type-2 write packet header (big payload for the
// register selected by the preceding type-1 packet).
func Type2Write(count int) uint32 {
	return 2<<29 | 2<<27 | uint32(count)&0x7FFFFFF
}

// Type2Read builds a type-2 read packet header (big readback request
// for the register selected by the preceding type-1 packet).
func Type2Read(count int) uint32 {
	return 2<<29 | 1<<27 | uint32(count)&0x7FFFFFF
}

// Configuration engine errors, latched until ClearError.
var (
	ErrCRC      = errors.New("fpga: configuration CRC mismatch")
	ErrIDCode   = errors.New("fpga: IDCODE mismatch")
	ErrBadFrame = errors.New("fpga: frame address outside device")
	ErrNotWCFG  = errors.New("fpga: FDRI write without WCFG command")
)

// ICAP is the internal configuration access port: a 32-bit write port
// into the device's configuration engine. WriteWord is purely functional
// — callers (the AXIS2ICAP converter, the HWICAP IP, baseline
// controllers) pace it at the physical rate of one word per 100 MHz
// cycle, which is exactly the paper's 400 MB/s theoretical ceiling.
type ICAP struct {
	fab *Fabric

	// StuckFault, when set, is consulted at every DESYNC command with
	// the engine-lifetime desync attempt number (completed desyncs plus
	// swallowed ones, so retries see fresh decisions). Returning true
	// swallows the DESYNC: the engine stays synced and the fabric never
	// sees end-of-sequence — the stuck-ICAP failure mode that only an
	// abort clears.
	StuckFault func(n uint64) bool

	synced  bool
	abort   bool
	regs    [16]uint32
	cmd     uint32
	wcfg    bool
	farIdx  int  // linear frame index for the next committed frame
	farOK   bool // farIdx valid
	crc     uint32
	crcPend []byte // serialised (reg,word) bytes awaiting a batched CRC fold
	lastReg uint32
	lastOp  uint32

	// FDRI pipeline: cur collects the incoming frame; pend holds the
	// previous complete frame, which commits when the next one finishes
	// (the 7-series frame buffer: writing N frames takes N+1 frames of
	// data, the last being a pad frame that is never committed).
	payload int // words still expected for the current packet
	preg    uint32
	cur     []uint32
	pend    []uint32
	spare   []uint32 // recycled frame buffer (pend dropped by a FAR write)

	// Readback: a type-1 read of FDRO (after CMD=RCFG and a FAR write)
	// queues frame words here; ReadWord drains them.
	readQ []uint32

	words     uint64
	frames    uint64
	err       error
	desyncs   uint64
	stuck     uint64
	staticWr  uint64
	partWrite map[*Partition]uint64
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// NewICAP returns the configuration port of fab.
func NewICAP(fab *Fabric) *ICAP {
	return &ICAP{fab: fab, partWrite: make(map[*Partition]uint64)}
}

// Abort performs the ICAP abort sequence (what the HWICAP's abort bit
// triggers): the packet engine desynchronises and drops any partial
// packet, pipeline frame and readback state. Configuration memory is
// untouched — recovery from an interrupted transfer is abort + full
// reload.
func (ic *ICAP) Abort() {
	ic.synced = false
	ic.payload = 0
	ic.wcfg = false
	ic.abort = false
	ic.err = nil
	ic.resetCRC()
	ic.readQ = nil
	ic.dropPipeline()
}

// Err returns the latched configuration error, if any.
func (ic *ICAP) Err() error { return ic.err }

// ClearError clears the latched error state.
func (ic *ICAP) ClearError() { ic.err = nil; ic.abort = false }

// Words returns the number of 32-bit words consumed since creation.
func (ic *ICAP) Words() uint64 { return ic.words }

// FramesWritten returns the number of frames committed to configuration
// memory.
func (ic *ICAP) FramesWritten() uint64 { return ic.frames }

// Desyncs returns how many complete configuration sequences (DESYNC
// commands) the engine has seen.
func (ic *ICAP) Desyncs() uint64 { return ic.desyncs }

// StuckFaults returns how many DESYNCs were swallowed by StuckFault.
func (ic *ICAP) StuckFaults() uint64 { return ic.stuck }

// Synced reports whether the engine has seen the sync word and is
// processing packets.
func (ic *ICAP) Synced() bool { return ic.synced }

func (ic *ICAP) fail(err error) {
	if ic.err == nil {
		ic.err = err
	}
	ic.abort = true
}

// UpdateCRC folds a (register, word) pair into a running configuration
// CRC. The real device CRC is a 32-bit CRC over {address, data} pairs;
// the model uses CRC-32C over the same pairs, which preserves the
// property that matters: any corruption of the loaded stream is caught
// at the CRC check. The bitstream writer uses the same function, so
// generated streams always carry the value the engine will compute.
func UpdateCRC(crc uint32, reg, w uint32) uint32 {
	// crc32.Update over the 5 bytes {reg, w LSB-first}: MakeTable
	// (Castagnoli) hands back the table the stdlib recognises, so this
	// dispatches to the hardware CRC32-C instruction where available.
	b := [5]byte{byte(reg), byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}
	return crc32.Update(crc, crcTable, b[:])
}

// UpdateCRCBytes folds an already-serialised run of (reg, word) bytes —
// produced in UpdateCRC's order, 5 bytes per word — into the running
// CRC. Batching whole frames through one call lets the stdlib use its
// wide hardware CRC path instead of word-at-a-time updates.
func UpdateCRCBytes(crc uint32, p []byte) uint32 {
	return crc32.Update(crc, crcTable, p)
}

// crcFlushLen bounds the lazily-buffered CRC byte run (about one frame).
const crcFlushLen = 505

func (ic *ICAP) crcUpdate(reg uint32, w uint32) {
	// The running CRC is folded lazily: bytes accumulate here and are
	// batched through one hardware-CRC call per ~frame, or on demand
	// when the CRC register is checked. Observable values are identical
	// to per-word folding.
	ic.crcPend = append(ic.crcPend, byte(reg), byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	if len(ic.crcPend) >= crcFlushLen {
		ic.flushCRC()
	}
}

func (ic *ICAP) flushCRC() {
	if len(ic.crcPend) > 0 {
		ic.crc = crc32.Update(ic.crc, crcTable, ic.crcPend)
		ic.crcPend = ic.crcPend[:0]
	}
}

// resetCRC clears the running CRC, discarding any lazily-buffered run
// (the fold of those bytes is dead either way).
func (ic *ICAP) resetCRC() {
	ic.crc = 0
	ic.crcPend = ic.crcPend[:0]
}

// WriteWord feeds one 32-bit word into the configuration engine.
func (ic *ICAP) WriteWord(w uint32) {
	ic.words++
	if !ic.synced {
		// Before sync, dummy/bus-width-detect words are ignored.
		if w == SyncWord {
			ic.synced = true
			ic.payload = 0
		}
		return
	}
	if ic.payload > 0 {
		ic.payload--
		ic.regWrite(ic.preg, w)
		return
	}
	ic.parseHeader(w)
}

func (ic *ICAP) parseHeader(w uint32) {
	typ := w >> 29
	op := w >> 27 & 0x3
	switch typ {
	case 1:
		reg := w >> 13 & 0x3FFF
		count := int(w & 0x7FF)
		ic.lastReg = reg
		ic.lastOp = op
		switch op {
		case 0: // NOP
		case 2: // write
			ic.preg = reg
			ic.payload = count
			if reg != RegFDRI {
				// Leaving an FDRI burst: the trailing pad frame in the
				// pipeline is discarded, not committed.
				ic.dropPipeline()
			}
		case 1: // read
			ic.startRead(reg, count)
		}
	case 2:
		count := int(w & 0x7FFFFFF)
		if ic.lastOp == 1 {
			ic.startRead(ic.lastReg, count)
			return
		}
		ic.preg = ic.lastReg
		ic.payload = count
	default:
		ic.fail(fmt.Errorf("fpga: bad packet header %#08x", w))
	}
}

// startRead services a read request. Readback of the frame data output
// register streams configuration memory starting at the current FAR
// (one simplification against real silicon: no leading pad frame in the
// readback stream). Ordinary registers read back their stored value.
func (ic *ICAP) startRead(reg uint32, count int) {
	switch reg {
	case RegFDRO:
		if ic.cmd != CmdRCFG {
			ic.fail(fmt.Errorf("fpga: FDRO read without RCFG command"))
			return
		}
		if !ic.farOK {
			ic.fail(fmt.Errorf("%w: FDRO read without valid FAR", ErrBadFrame))
			return
		}
		idx := ic.farIdx
		for len(ic.readQ) < count {
			frame, err := ic.fab.Mem.ReadFrame(idx)
			if err != nil {
				ic.fail(err)
				return
			}
			ic.readQ = append(ic.readQ, frame...)
			idx++
		}
		ic.readQ = ic.readQ[:count]
		ic.farIdx = idx
	default:
		// Ordinary registers hold a single word; a request for more than
		// the register file can meaningfully supply is a malformed
		// stream, not a reason to materialise gigabytes of readback.
		const maxRegRead = 4096
		if count > maxRegRead {
			ic.fail(fmt.Errorf("fpga: register %#x read of %d words", reg, count))
			return
		}
		for n := 0; n < count; n++ {
			var v uint32
			if reg < uint32(len(ic.regs)) {
				v = ic.regs[reg]
			}
			ic.readQ = append(ic.readQ, v)
		}
	}
}

// ReadWord pops one word from the readback stream; ok is false when the
// stream is empty.
func (ic *ICAP) ReadWord() (w uint32, ok bool) {
	if len(ic.readQ) == 0 {
		return 0, false
	}
	w = ic.readQ[0]
	ic.readQ = ic.readQ[1:]
	return w, true
}

// ReadPending returns the number of queued readback words.
func (ic *ICAP) ReadPending() int { return len(ic.readQ) }

func (ic *ICAP) dropPipeline() {
	ic.cur = ic.cur[:0]
	if ic.pend != nil {
		ic.spare = ic.pend[:0] // keep the storage for the next pipeline fill
		ic.pend = nil
	}
}

func (ic *ICAP) regWrite(reg uint32, w uint32) {
	if reg != RegCRC {
		ic.crcUpdate(reg, w)
	}
	switch reg {
	case RegFDRI:
		ic.fdriWord(w)
		return
	case RegCMD:
		ic.command(w)
	case RegFAR:
		idx, err := ic.fab.Dev.FARToIndex(w)
		if err != nil {
			ic.fail(fmt.Errorf("%w: FAR %#08x", ErrBadFrame, w))
			ic.farOK = false
		} else {
			ic.farIdx = idx
			ic.farOK = true
		}
		ic.dropPipeline()
	case RegIDCODE:
		if w != ic.fab.Dev.IDCode {
			ic.fail(fmt.Errorf("%w: stream %#08x, device %#08x", ErrIDCode, w, ic.fab.Dev.IDCode))
		}
	case RegCRC:
		ic.flushCRC()
		if w != ic.crc {
			ic.fail(fmt.Errorf("%w: stream %#08x, computed %#08x", ErrCRC, w, ic.crc))
		}
		ic.resetCRC()
	}
	if reg < uint32(len(ic.regs)) {
		ic.regs[reg] = w
	}
}

func (ic *ICAP) command(w uint32) {
	ic.cmd = w & 0x1F
	switch ic.cmd {
	case CmdRCRC:
		ic.resetCRC()
	case CmdWCFG:
		ic.wcfg = true
	case CmdNull, CmdLFRM, CmdStart, CmdAGHigh, CmdRCFG:
		ic.wcfg = false
	case CmdDesync:
		if ic.StuckFault != nil && ic.StuckFault(ic.desyncs+ic.stuck) {
			ic.stuck++
			return
		}
		ic.synced = false
		ic.wcfg = false
		ic.desyncs++
		ic.dropPipeline()
		ic.fab.endOfSequence()
	}
}

func (ic *ICAP) fdriWord(w uint32) {
	if ic.abort {
		return
	}
	if !ic.wcfg {
		ic.fail(ErrNotWCFG)
		return
	}
	ic.cur = append(ic.cur, w)
	if len(ic.cur) < FrameWords {
		return
	}
	// A frame is complete: commit the previous one (if any) and hold
	// this one in the pipeline. The committed frame's storage is
	// recycled as the next collection buffer (WriteFrame copies), so
	// the steady-state frame flow ping-pongs two buffers instead of
	// allocating one per frame.
	full := ic.cur
	switch {
	case ic.pend != nil:
		ic.commit(ic.pend)
		ic.cur = ic.pend[:0]
	case ic.spare != nil:
		ic.cur = ic.spare
		ic.spare = nil
	default:
		ic.cur = make([]uint32, 0, FrameWords)
	}
	ic.pend = full
}

func (ic *ICAP) commit(frame []uint32) {
	if !ic.farOK {
		ic.fail(fmt.Errorf("%w: FDRI without valid FAR", ErrBadFrame))
		return
	}
	if err := ic.fab.Mem.WriteFrame(ic.farIdx, frame); err != nil {
		ic.fail(err)
		return
	}
	if part := ic.fab.partOf(ic.farIdx); part != nil {
		ic.partWrite[part]++
	} else {
		ic.staticWr++
	}
	ic.frames++
	ic.farIdx++
}

// StaticFrameWrites returns the frames written outside any partition.
func (ic *ICAP) StaticFrameWrites() uint64 { return ic.staticWr }

// PartitionFrameWrites returns the frames written into p.
func (ic *ICAP) PartitionFrameWrites(p *Partition) uint64 { return ic.partWrite[p] }

package fpga

import (
	"errors"
	"testing"
	"testing/quick"
)

func testDevice() *Device {
	// 2 rows x [CLB CLB BRAM CLB DSP] — small but exercises all kinds.
	return NewDevice("test", 0x1234ABCD, 2, []ColumnKind{ColCLB, ColCLB, ColBRAM, ColCLB, ColDSP})
}

func TestDeviceFrameCounts(t *testing.T) {
	d := testDevice()
	perRow := 36 + 36 + 156 + 36 + 28
	if d.TotalFrames() != 2*perRow {
		t.Errorf("TotalFrames = %d, want %d", d.TotalFrames(), 2*perRow)
	}
}

func TestFrameIndexCoordsRoundTrip(t *testing.T) {
	d := testDevice()
	for idx := 0; idx < d.TotalFrames(); idx++ {
		row, col, minor, err := d.FrameCoords(idx)
		if err != nil {
			t.Fatalf("FrameCoords(%d): %v", idx, err)
		}
		back, err := d.FrameIndex(row, col, minor)
		if err != nil || back != idx {
			t.Fatalf("round trip %d -> (%d,%d,%d) -> %d, %v", idx, row, col, minor, back, err)
		}
	}
}

func TestFARPackUnpackRoundTrip(t *testing.T) {
	d := testDevice()
	f := func(idx16 uint16) bool {
		idx := int(idx16) % d.TotalFrames()
		far, err := d.IndexToFAR(idx)
		if err != nil {
			return false
		}
		back, err := d.FARToIndex(far)
		return err == nil && back == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameIndexBounds(t *testing.T) {
	d := testDevice()
	if _, err := d.FrameIndex(2, 0, 0); err == nil {
		t.Error("row out of range accepted")
	}
	if _, err := d.FrameIndex(0, 5, 0); err == nil {
		t.Error("col out of range accepted")
	}
	if _, err := d.FrameIndex(0, 0, 36); err == nil {
		t.Error("minor out of range accepted")
	}
	if _, _, _, err := d.FrameCoords(d.TotalFrames()); err == nil {
		t.Error("index out of range accepted")
	}
}

func TestColumnSpanFramesAndResources(t *testing.T) {
	d := testDevice()
	frames, err := d.ColumnSpanFrames(0, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2*(36+156) {
		t.Errorf("span frames = %d, want %d", len(frames), 2*(36+156))
	}
	res := d.SpanResources(0, 1, 1, 2)
	want := Resources{LUT: 800, FF: 1600, BRAM: 20}
	if res != want {
		t.Errorf("span resources = %v, want %v", res, want)
	}
	if _, err := d.ColumnSpanFrames(1, 0, 0, 0); err == nil {
		t.Error("empty span accepted")
	}
}

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{LUT: 10, FF: 20, BRAM: 2, DSP: 1}
	b := Resources{LUT: 5, FF: 5, BRAM: 1, DSP: 1}
	if got := a.Add(b); got != (Resources{15, 25, 3, 2}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Resources{5, 15, 1, 0}) {
		t.Errorf("Sub = %v", got)
	}
	if !b.FitsIn(a) || a.FitsIn(b) {
		t.Error("FitsIn wrong")
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}

func TestKintex7Geometry(t *testing.T) {
	d := NewKintex7()
	if d.IDCode != XC7K325TIDCode {
		t.Errorf("IDCode = %#x", d.IDCode)
	}
	// 6 reps x (12 CLB + 1 BRAM + 1 DSP) x 7 rows.
	total := d.SpanResources(0, d.Rows-1, 0, len(d.Cols)-1)
	want := Resources{LUT: 201600, FF: 403200, BRAM: 420, DSP: 840}
	if total != want {
		t.Errorf("device capacity = %v, want %v", total, want)
	}
}

func TestConfigMemoryFrames(t *testing.T) {
	d := testDevice()
	m := NewConfigMemory(d)
	frame := make([]uint32, FrameWords)
	frame[0] = 0xDEAD
	if err := m.WriteFrame(3, frame); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadFrame(3)
	if err != nil || got[0] != 0xDEAD {
		t.Errorf("ReadFrame = %v, %v", got[0], err)
	}
	if !m.Configured(3) || m.Configured(4) {
		t.Error("Configured tracking wrong")
	}
	// Unwritten frames read as zeros.
	z, err := m.ReadFrame(0)
	if err != nil || z[0] != 0 || len(z) != FrameWords {
		t.Errorf("unconfigured frame = %v, %v", z[0], err)
	}
	if err := m.WriteFrame(d.TotalFrames(), frame); err == nil {
		t.Error("out-of-device write accepted")
	}
	if err := m.WriteFrame(0, frame[:10]); err == nil {
		t.Error("short frame accepted")
	}
	dirty := m.TakeDirty()
	if len(dirty) != 1 || dirty[0] != 3 {
		t.Errorf("dirty = %v", dirty)
	}
	if len(m.TakeDirty()) != 0 {
		t.Error("dirty not reset")
	}
}

// streamBuilder assembles configuration word streams for engine tests,
// tracking the CRC exactly as the engine does.
type streamBuilder struct {
	words []uint32
	crc   uint32
}

func (b *streamBuilder) raw(ws ...uint32) *streamBuilder {
	b.words = append(b.words, ws...)
	return b
}

func (b *streamBuilder) header() *streamBuilder {
	return b.raw(DummyWord, DummyWord, BusWidthSync, BusWidthWord, DummyWord, SyncWord)
}

func (b *streamBuilder) write(reg uint32, vals ...uint32) *streamBuilder {
	b.raw(Type1Write(reg, len(vals)))
	for _, v := range vals {
		b.raw(v)
		if reg != RegCRC {
			b.crc = UpdateCRC(b.crc, reg, v)
		}
	}
	return b
}

func (b *streamBuilder) cmd(c uint32) *streamBuilder {
	b.write(RegCMD, c)
	if c == CmdRCRC {
		b.crc = 0 // the engine resets its CRC on RCRC
	}
	return b
}

func (b *streamBuilder) fdri(frames ...[]uint32) *streamBuilder {
	b.raw(Type1Write(RegFDRI, 0))
	n := 0
	for _, f := range frames {
		n += len(f)
	}
	b.raw(Type2Write(n))
	for _, f := range frames {
		for _, w := range f {
			b.raw(w)
			b.crc = UpdateCRC(b.crc, RegFDRI, w)
		}
	}
	return b
}

func patFrame(seed uint32) []uint32 {
	f := make([]uint32, FrameWords)
	for i := range f {
		f[i] = seed + uint32(i)
	}
	return f
}

func feed(ic *ICAP, words []uint32) {
	for _, w := range words {
		ic.WriteWord(w)
	}
}

func newTestFabric() (*Fabric, *ICAP) {
	f := NewFabric(testDevice())
	return f, NewICAP(f)
}

func TestICAPIgnoresPreSyncNoise(t *testing.T) {
	_, ic := newTestFabric()
	feed(ic, []uint32{0x12345678, DummyWord, 0})
	if ic.Synced() {
		t.Error("synced on noise")
	}
	ic.WriteWord(SyncWord)
	if !ic.Synced() {
		t.Error("did not sync on sync word")
	}
}

func TestICAPFramePipelineNeedsPad(t *testing.T) {
	fab, ic := newTestFabric()
	f1, f2 := patFrame(100), patFrame(200)
	pad := make([]uint32, FrameWords)
	far, _ := fab.Dev.IndexToFAR(10)

	var b streamBuilder
	b.header().
		cmd(CmdRCRC).
		write(RegIDCODE, fab.Dev.IDCode).
		cmd(CmdWCFG).
		write(RegFAR, far).
		fdri(f1, f2, pad).
		cmd(CmdDesync)
	feed(ic, b.words)

	if err := ic.Err(); err != nil {
		t.Fatalf("engine error: %v", err)
	}
	if ic.FramesWritten() != 2 {
		t.Fatalf("FramesWritten = %d, want 2 (pad discarded)", ic.FramesWritten())
	}
	got, _ := fab.Mem.ReadFrame(10)
	if got[0] != 100 {
		t.Errorf("frame 10 word0 = %d, want 100", got[0])
	}
	got, _ = fab.Mem.ReadFrame(11)
	if got[0] != 200 {
		t.Errorf("frame 11 word0 = %d, want 200", got[0])
	}
	if fab.Mem.Configured(12) {
		t.Error("pad frame was committed")
	}
	if ic.Desyncs() != 1 {
		t.Errorf("Desyncs = %d", ic.Desyncs())
	}
}

func TestICAPIDCodeMismatch(t *testing.T) {
	fab, ic := newTestFabric()
	var b streamBuilder
	b.header().cmd(CmdRCRC).write(RegIDCODE, 0xBADC0DE)
	feed(ic, b.words)
	if !errors.Is(ic.Err(), ErrIDCode) {
		t.Errorf("err = %v, want ErrIDCode", ic.Err())
	}
	// Frame writes after the error are suppressed.
	far, _ := fab.Dev.IndexToFAR(0)
	var c streamBuilder
	c.cmd(CmdWCFG).write(RegFAR, far).fdri(patFrame(1), make([]uint32, FrameWords))
	feed(ic, c.words)
	if ic.FramesWritten() != 0 {
		t.Errorf("frames written after IDCODE error: %d", ic.FramesWritten())
	}
}

func TestICAPCRCCheck(t *testing.T) {
	fab, ic := newTestFabric()
	far, _ := fab.Dev.IndexToFAR(0)
	var b streamBuilder
	b.header().cmd(CmdRCRC).write(RegIDCODE, fab.Dev.IDCode).cmd(CmdWCFG).
		write(RegFAR, far).fdri(patFrame(7), make([]uint32, FrameWords))
	b.write(RegCRC, b.crc) // correct CRC
	b.cmd(CmdDesync)
	feed(ic, b.words)
	if ic.Err() != nil {
		t.Fatalf("correct CRC rejected: %v", ic.Err())
	}

	_, ic2 := newTestFabric()
	var c streamBuilder
	c.header().cmd(CmdRCRC).write(RegIDCODE, fab.Dev.IDCode).cmd(CmdWCFG).
		write(RegFAR, far).fdri(patFrame(7), make([]uint32, FrameWords))
	c.write(RegCRC, c.crc^1) // corrupted CRC
	feed(ic2, c.words)
	if !errors.Is(ic2.Err(), ErrCRC) {
		t.Errorf("err = %v, want ErrCRC", ic2.Err())
	}
}

func TestICAPFDRIWithoutWCFG(t *testing.T) {
	fab, ic := newTestFabric()
	far, _ := fab.Dev.IndexToFAR(0)
	var b streamBuilder
	b.header().cmd(CmdRCRC).write(RegFAR, far).fdri(patFrame(1))
	feed(ic, b.words)
	if !errors.Is(ic.Err(), ErrNotWCFG) {
		t.Errorf("err = %v, want ErrNotWCFG", ic.Err())
	}
}

func TestICAPFDRIWithoutFAR(t *testing.T) {
	fab, ic := newTestFabric()
	_ = fab
	var b streamBuilder
	b.header().cmd(CmdRCRC).cmd(CmdWCFG).fdri(patFrame(1), patFrame(2))
	feed(ic, b.words)
	if !errors.Is(ic.Err(), ErrBadFrame) {
		t.Errorf("err = %v, want ErrBadFrame", ic.Err())
	}
}

func TestICAPBadFAR(t *testing.T) {
	fab, ic := newTestFabric()
	var b streamBuilder
	// Column 9 does not exist on the test device.
	b.header().cmd(CmdRCRC).write(RegFAR, fab.Dev.PackFAR(0, 9, 0))
	feed(ic, b.words)
	if !errors.Is(ic.Err(), ErrBadFrame) {
		t.Errorf("err = %v, want ErrBadFrame", ic.Err())
	}
}

func TestICAPClearError(t *testing.T) {
	_, ic := newTestFabric()
	var b streamBuilder
	b.header().write(RegIDCODE, 0xBAD)
	feed(ic, b.words)
	if ic.Err() == nil {
		t.Fatal("no error latched")
	}
	ic.ClearError()
	if ic.Err() != nil {
		t.Error("error survived ClearError")
	}
}

func TestPartitionActivationBySignature(t *testing.T) {
	fab, ic := newTestFabric()
	frames, _ := fab.Dev.ColumnSpanFrames(0, 0, 0, 0) // 36 frames
	part, err := fab.AddPartition("RP0", frames, Resources{LUT: 100}, Resources{LUT: 400, FF: 800})
	if err != nil {
		t.Fatal(err)
	}

	// Build module contents and register its signature by staging the
	// frames directly, reading the signature, then wiping.
	content := make([][]uint32, len(frames))
	for i := range content {
		content[i] = patFrame(uint32(1000 + i))
	}
	for i, idx := range frames {
		fab.Mem.WriteFrame(idx, content[i])
	}
	sig := fab.Signature(part)
	fab.RegisterModule("sobel", sig)
	for _, idx := range frames {
		fab.Mem.WriteFrame(idx, make([]uint32, FrameWords))
	}
	fab.Mem.TakeDirty()

	var loaded []string
	fab.OnModuleLoaded(func(p *Partition, m string) { loaded = append(loaded, p.Name+":"+m) })

	// Now load the module through the ICAP engine.
	far, _ := fab.Dev.IndexToFAR(frames[0])
	var b streamBuilder
	b.header().cmd(CmdRCRC).write(RegIDCODE, fab.Dev.IDCode).cmd(CmdWCFG).write(RegFAR, far)
	all := append(append([][]uint32{}, content...), make([]uint32, FrameWords))
	b.fdri(all...)
	b.cmd(CmdDesync)
	feed(ic, b.words)

	if ic.Err() != nil {
		t.Fatalf("engine error: %v", ic.Err())
	}
	if part.Active() != "sobel" {
		t.Fatalf("Active = %q, want sobel", part.Active())
	}
	if part.Loads() != 1 {
		t.Errorf("Loads = %d", part.Loads())
	}
	if len(loaded) != 1 || loaded[0] != "RP0:sobel" {
		t.Errorf("callbacks = %v", loaded)
	}
	if ic.PartitionFrameWrites(part) != uint64(len(frames)) {
		t.Errorf("partition frame writes = %d, want %d", ic.PartitionFrameWrites(part), len(frames))
	}
}

func TestPartitionPartialLoadStaysInactive(t *testing.T) {
	fab, ic := newTestFabric()
	frames, _ := fab.Dev.ColumnSpanFrames(0, 0, 0, 0)
	part, _ := fab.AddPartition("RP0", frames, Resources{}, Resources{})
	far, _ := fab.Dev.IndexToFAR(frames[0])

	// Load only 5 of the 36 frames, then desync.
	var b streamBuilder
	b.header().cmd(CmdRCRC).write(RegIDCODE, fab.Dev.IDCode).cmd(CmdWCFG).write(RegFAR, far)
	var some [][]uint32
	for i := 0; i < 5; i++ {
		some = append(some, patFrame(uint32(i)))
	}
	some = append(some, make([]uint32, FrameWords))
	b.fdri(some...)
	b.cmd(CmdDesync)
	feed(ic, b.words)

	if part.Active() != "" {
		t.Errorf("partially loaded partition active as %q", part.Active())
	}
}

func TestPartitionOverlapAndDuplicates(t *testing.T) {
	fab := NewFabric(testDevice())
	frames, _ := fab.Dev.ColumnSpanFrames(0, 0, 0, 0)
	if _, err := fab.AddPartition("A", frames, Resources{}, Resources{}); err != nil {
		t.Fatal(err)
	}
	if _, err := fab.AddPartition("B", frames[:3], Resources{}, Resources{}); err == nil {
		t.Error("overlapping partition accepted")
	}
	if _, err := fab.AddPartition("C", []int{500, 500}, Resources{}, Resources{}); err == nil {
		t.Error("duplicate frames accepted")
	}
	if _, err := fab.AddPartition("D", []int{1 << 20}, Resources{}, Resources{}); err == nil {
		t.Error("out-of-device frame accepted")
	}
	if fab.Partition("A") == nil || fab.Partition("zzz") != nil {
		t.Error("Partition lookup wrong")
	}
}

func TestPartitionRuns(t *testing.T) {
	fab := NewFabric(testDevice())
	p, err := fab.AddPartition("A", []int{5, 6, 7, 20, 21, 40}, Resources{}, Resources{})
	if err != nil {
		t.Fatal(err)
	}
	runs := p.Runs()
	want := [][2]int{{5, 7}, {20, 21}, {40, 40}}
	if len(runs) != len(want) {
		t.Fatalf("runs = %v, want %v", runs, want)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("runs = %v, want %v", runs, want)
		}
	}
}

func TestDefaultFloorplan(t *testing.T) {
	fab := NewFabric(NewKintex7())
	p, err := AddDefaultPartition(fab)
	if err != nil {
		t.Fatal(err)
	}
	// 2 rows x (12 CLB + 2 BRAM + 1 DSP) = 2 x 772 frames.
	if p.NumFrames() != 1544 {
		t.Errorf("default RP frames = %d, want 1544", p.NumFrames())
	}
	if p.Reserve != DefaultRPReserve {
		t.Errorf("reserve = %v", p.Reserve)
	}
	if !p.Reserve.FitsIn(p.Span) {
		t.Errorf("reserve %v does not fit span %v", p.Reserve, p.Span)
	}
	// Two contiguous runs, one per row.
	if runs := p.Runs(); len(runs) != 2 {
		t.Errorf("default RP runs = %d, want 2", len(runs))
	}
}

func TestSweepPartitions(t *testing.T) {
	for _, s := range DefaultSweep {
		fab := NewFabric(NewKintex7())
		p, err := AddSweepPartition(fab, s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if p.NumFrames() == 0 {
			t.Errorf("%s: zero frames", s.Name)
		}
	}
	// The ladder must be strictly increasing in frame count.
	prev := 0
	for _, s := range DefaultSweep {
		fab := NewFabric(NewKintex7())
		p, _ := AddSweepPartition(fab, s)
		if p.NumFrames() <= prev {
			t.Errorf("sweep not increasing at %s: %d after %d", s.Name, p.NumFrames(), prev)
		}
		prev = p.NumFrames()
	}
}

func TestPacketHeaderBuilders(t *testing.T) {
	h := Type1Write(RegCMD, 1)
	if h>>29 != 1 || h>>27&3 != 2 || h>>13&0x3FFF != RegCMD || h&0x7FF != 1 {
		t.Errorf("Type1Write = %#08x", h)
	}
	r := Type1Read(RegSTAT, 1)
	if r>>27&3 != 1 {
		t.Errorf("Type1Read op = %d", r>>27&3)
	}
	t2 := Type2Write(123456)
	if t2>>29 != 2 || t2&0x7FFFFFF != 123456 {
		t.Errorf("Type2Write = %#08x", t2)
	}
	if NoopWord>>29 != 1 || NoopWord>>27&3 != 0 {
		t.Errorf("NoopWord = %#08x", NoopWord)
	}
}

func TestICAPRandomStreamNeverPanics(t *testing.T) {
	// Arbitrary word soup — including accidental sync words and bogus
	// packet headers — must never panic the engine; errors latch.
	f := func(words []uint32, syncAt uint8) bool {
		fab, ic := newTestFabric()
		_ = fab
		ic.WriteWord(SyncWord) // force it into packet parsing
		for _, w := range words {
			ic.WriteWord(w)
		}
		// Interleave another sync attempt.
		ic.WriteWord(SyncWord)
		for i, w := range words {
			if uint8(i) == syncAt {
				ic.WriteWord(CmdDesync)
			}
			ic.WriteWord(w ^ 0xA5A5A5A5)
		}
		return true // reaching here = no panic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestICAPReadbackRegister(t *testing.T) {
	fab, ic := newTestFabric()
	var b streamBuilder
	b.header().write(RegIDCODE, fab.Dev.IDCode)
	b.raw(Type1Read(RegIDCODE, 1))
	feed(ic, b.words)
	v, ok := ic.ReadWord()
	if !ok || v != fab.Dev.IDCode {
		t.Errorf("register readback = %#x, %v", v, ok)
	}
	if _, ok := ic.ReadWord(); ok {
		t.Error("read queue not drained")
	}
}

func TestICAPFrameReadbackRoundTrip(t *testing.T) {
	fab, ic := newTestFabric()
	// Write two frames, then read them back via RCFG/FDRO.
	f1, f2 := patFrame(500), patFrame(600)
	far, _ := fab.Dev.IndexToFAR(20)
	var b streamBuilder
	b.header().cmd(CmdRCRC).write(RegIDCODE, fab.Dev.IDCode).cmd(CmdWCFG).
		write(RegFAR, far).fdri(f1, f2, make([]uint32, FrameWords)).cmd(CmdDesync)
	feed(ic, b.words)
	if ic.Err() != nil {
		t.Fatal(ic.Err())
	}
	var r streamBuilder
	r.header().write(RegFAR, far).cmd(CmdRCFG)
	r.raw(Type1Read(RegFDRO, 2*FrameWords))
	feed(ic, r.words)
	if ic.Err() != nil {
		t.Fatal(ic.Err())
	}
	if ic.ReadPending() != 2*FrameWords {
		t.Fatalf("pending = %d", ic.ReadPending())
	}
	for i := 0; i < FrameWords; i++ {
		w, _ := ic.ReadWord()
		if w != f1[i] {
			t.Fatalf("frame1 word %d = %#x, want %#x", i, w, f1[i])
		}
	}
	for i := 0; i < FrameWords; i++ {
		w, _ := ic.ReadWord()
		if w != f2[i] {
			t.Fatalf("frame2 word %d = %#x", i, w)
		}
	}
}

func TestICAPFDROWithoutRCFGFails(t *testing.T) {
	fab, ic := newTestFabric()
	far, _ := fab.Dev.IndexToFAR(0)
	var b streamBuilder
	b.header().write(RegFAR, far)
	b.raw(Type1Read(RegFDRO, FrameWords))
	feed(ic, b.words)
	if ic.Err() == nil {
		t.Error("FDRO read without RCFG accepted")
	}
}

func TestICAPAbortRecovers(t *testing.T) {
	fab, ic := newTestFabric()
	// Get stuck mid-FDRI payload.
	far, _ := fab.Dev.IndexToFAR(0)
	var b streamBuilder
	b.header().cmd(CmdRCRC).write(RegIDCODE, fab.Dev.IDCode).cmd(CmdWCFG).write(RegFAR, far)
	b.raw(Type1Write(RegFDRI, 0), Type2Write(5*FrameWords))
	b.raw(1, 2, 3) // partial payload
	feed(ic, b.words)
	if !ic.Synced() {
		t.Fatal("not synced mid-payload")
	}
	ic.Abort()
	if ic.Synced() || ic.Err() != nil {
		t.Fatalf("abort state: synced=%v err=%v", ic.Synced(), ic.Err())
	}
	// A clean sequence now works.
	var c streamBuilder
	c.header().cmd(CmdRCRC).write(RegIDCODE, fab.Dev.IDCode).cmd(CmdWCFG).
		write(RegFAR, far).fdri(patFrame(9), make([]uint32, FrameWords)).cmd(CmdDesync)
	feed(ic, c.words)
	if ic.Err() != nil {
		t.Fatalf("post-abort load failed: %v", ic.Err())
	}
	got, _ := fab.Mem.ReadFrame(0)
	if got[0] != 9 {
		t.Error("post-abort frame content wrong")
	}
}

func TestArtix7Geometry(t *testing.T) {
	d := NewArtix7()
	if d.IDCode != XC7A100TIDCode {
		t.Errorf("IDCode = %#x", d.IDCode)
	}
	total := d.SpanResources(0, d.Rows-1, 0, len(d.Cols)-1)
	want := Resources{LUT: 57600, FF: 115200, BRAM: 120, DSP: 240}
	if total != want {
		t.Errorf("capacity = %v, want %v", total, want)
	}
	// The two devices must be distinguishable by IDCODE (the ICAP
	// rejects cross-device bitstreams on that basis).
	if d.IDCode == NewKintex7().IDCode {
		t.Error("devices share an IDCODE")
	}
}

func TestRemovePartitionFreesFrames(t *testing.T) {
	fab := NewFabric(testDevice())
	frames, _ := fab.Dev.ColumnSpanFrames(0, 0, 0, 1)
	p, err := fab.AddPartition("A", frames, Resources{}, Resources{})
	if err != nil {
		t.Fatal(err)
	}
	if fab.Owner(frames[0]) != p {
		t.Fatal("Owner does not report the partition")
	}
	// Overlap is rejected while the partition is live...
	if _, err := fab.AddPartition("B", frames[:3], Resources{}, Resources{}); err == nil {
		t.Fatal("overlapping partition accepted")
	}
	if err := fab.RemovePartition(p); err != nil {
		t.Fatal(err)
	}
	// ...and the frames are reusable (and the name too) once removed.
	if fab.Owner(frames[0]) != nil {
		t.Error("removed partition still owns its frames")
	}
	if fab.Partition("A") != nil {
		t.Error("removed partition still listed")
	}
	q, err := fab.AddPartition("A", frames[:3], Resources{}, Resources{})
	if err != nil {
		t.Fatalf("re-adding over a removed span: %v", err)
	}
	if fab.Owner(frames[0]) != q {
		t.Error("re-added partition does not own its frames")
	}
	// Double removal (or removing a foreign partition) is an error.
	if err := fab.RemovePartition(p); err == nil {
		t.Error("removing a removed partition succeeded")
	}
}

func TestAddPartitionRejectsDuplicateName(t *testing.T) {
	fab := NewFabric(testDevice())
	frames, _ := fab.Dev.ColumnSpanFrames(0, 0, 0, 1)
	if _, err := fab.AddPartition("A", frames[:3], Resources{}, Resources{}); err != nil {
		t.Fatal(err)
	}
	if _, err := fab.AddPartition("A", frames[3:6], Resources{}, Resources{}); err == nil {
		t.Error("duplicate partition name accepted")
	}
}

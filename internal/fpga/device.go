// Package fpga models the reconfigurable fabric of a Xilinx 7-series
// device: the frame-organised configuration memory, the configuration
// engine behind the ICAP primitive (packet parser, configuration
// registers, CRC), and the floorplan of reconfigurable partitions that
// host exchangeable modules.
//
// The paper targets a Kintex-7 XC7K325T (Genesys2). The model keeps the
// 7-series configuration architecture — 101-word frames, FAR-addressed
// columns, type-1/type-2 packets through a 32-bit ICAP port clocked at
// 100 MHz — because those facts determine every reconfiguration-time
// result in the paper.
package fpga

import "fmt"

// FrameWords is the size of one 7-series configuration frame in 32-bit
// words; FrameBytes is the same in bytes. These are device constants of
// the whole 7-series family (UG470).
const (
	FrameWords = 101
	FrameBytes = FrameWords * 4
)

// ColumnKind classifies a fabric column for configuration purposes.
type ColumnKind int

const (
	// ColCLB is a slice (LUT/FF) column.
	ColCLB ColumnKind = iota
	// ColBRAM is a block-RAM column (interconnect + content frames).
	ColBRAM
	// ColDSP is a DSP48 column.
	ColDSP
)

func (c ColumnKind) String() string {
	switch c {
	case ColCLB:
		return "CLB"
	case ColBRAM:
		return "BRAM"
	case ColDSP:
		return "DSP"
	}
	return fmt.Sprintf("ColumnKind(%d)", int(c))
}

// FramesPerColumn returns the configuration frames of one column within
// one clock region (7-series values: CLB 36, DSP 28, BRAM 28
// interconnect + 128 content).
func (c ColumnKind) FramesPerColumn() int {
	switch c {
	case ColCLB:
		return 36
	case ColBRAM:
		return 28 + 128
	case ColDSP:
		return 28
	}
	panic("fpga: unknown column kind")
}

// Resources counts fabric primitives. BRAM counts RAMB36 tiles, matching
// how the paper's tables count "BRAMs".
type Resources struct {
	LUT  int
	FF   int
	BRAM int
	DSP  int
}

// Add returns the component-wise sum.
func (r Resources) Add(o Resources) Resources {
	return Resources{r.LUT + o.LUT, r.FF + o.FF, r.BRAM + o.BRAM, r.DSP + o.DSP}
}

// Sub returns the component-wise difference.
func (r Resources) Sub(o Resources) Resources {
	return Resources{r.LUT - o.LUT, r.FF - o.FF, r.BRAM - o.BRAM, r.DSP - o.DSP}
}

// FitsIn reports whether r fits within capacity c.
func (r Resources) FitsIn(c Resources) bool {
	return r.LUT <= c.LUT && r.FF <= c.FF && r.BRAM <= c.BRAM && r.DSP <= c.DSP
}

func (r Resources) String() string {
	return fmt.Sprintf("%d LUT / %d FF / %d BRAM / %d DSP", r.LUT, r.FF, r.BRAM, r.DSP)
}

// ColumnResources returns the primitives one column contributes per clock
// region (7-series: a CLB column holds 50 CLBs = 400 LUTs / 800 FFs; a
// BRAM column holds 10 RAMB36; a DSP column holds 20 DSP48).
func (c ColumnKind) ColumnResources() Resources {
	switch c {
	case ColCLB:
		return Resources{LUT: 400, FF: 800}
	case ColBRAM:
		return Resources{BRAM: 10}
	case ColDSP:
		return Resources{DSP: 20}
	}
	panic("fpga: unknown column kind")
}

// Device describes the fabric geometry: Rows clock regions, each crossed
// by the same ordered list of columns. Frames are addressed linearly in
// (row, column, minor) order; FrameAddr converts to and from the packed
// 7-series FAR layout.
type Device struct {
	Name   string
	IDCode uint32
	Rows   int
	Cols   []ColumnKind

	// frameBase[c] is the first linear frame index of column c within a
	// row; rowFrames is the frame count of one full row.
	frameBase []int
	rowFrames int
}

// NewDevice constructs a device from its geometry.
func NewDevice(name string, idcode uint32, rows int, cols []ColumnKind) *Device {
	d := &Device{Name: name, IDCode: idcode, Rows: rows, Cols: cols}
	d.frameBase = make([]int, len(cols))
	n := 0
	for i, c := range cols {
		d.frameBase[i] = n
		n += c.FramesPerColumn()
	}
	d.rowFrames = n
	return d
}

// TotalFrames returns the device's configuration frame count.
func (d *Device) TotalFrames() int { return d.rowFrames * d.Rows }

// FrameIndex returns the linear frame index of (row, col, minor).
func (d *Device) FrameIndex(row, col, minor int) (int, error) {
	if row < 0 || row >= d.Rows || col < 0 || col >= len(d.Cols) {
		return 0, fmt.Errorf("fpga: frame (%d,%d,%d) outside device %s", row, col, minor, d.Name)
	}
	if minor < 0 || minor >= d.Cols[col].FramesPerColumn() {
		return 0, fmt.Errorf("fpga: minor %d outside column %d (%v)", minor, col, d.Cols[col])
	}
	return row*d.rowFrames + d.frameBase[col] + minor, nil
}

// FrameCoords is the inverse of FrameIndex.
func (d *Device) FrameCoords(idx int) (row, col, minor int, err error) {
	if idx < 0 || idx >= d.TotalFrames() {
		return 0, 0, 0, fmt.Errorf("fpga: frame index %d outside device %s (%d frames)", idx, d.Name, d.TotalFrames())
	}
	row = idx / d.rowFrames
	rem := idx % d.rowFrames
	for c := len(d.Cols) - 1; c >= 0; c-- {
		if rem >= d.frameBase[c] {
			return row, c, rem - d.frameBase[c], nil
		}
	}
	panic("fpga: unreachable frame decomposition")
}

// PackFAR packs (row, col, minor) into the frame address register
// layout: [22:18] row, [17:8] column, [7:0] minor. The layout follows
// the 7-series FAR structure (row/column/minor fields) with one
// deviation: the minor field is 8 bits instead of 7 because this model
// folds BRAM content frames (a separate block type on real silicon,
// with its own 0..127 minor space) into the same address space as their
// column, giving BRAM columns 156 minors.
func (d *Device) PackFAR(row, col, minor int) uint32 {
	return uint32(row&0x1F)<<18 | uint32(col&0x3FF)<<8 | uint32(minor&0xFF)
}

// UnpackFAR is the inverse of PackFAR.
func (d *Device) UnpackFAR(far uint32) (row, col, minor int) {
	return int(far >> 18 & 0x1F), int(far >> 8 & 0x3FF), int(far & 0xFF)
}

// FARToIndex converts a packed FAR to the linear frame index.
func (d *Device) FARToIndex(far uint32) (int, error) {
	row, col, minor := d.UnpackFAR(far)
	return d.FrameIndex(row, col, minor)
}

// IndexToFAR converts a linear frame index to a packed FAR.
func (d *Device) IndexToFAR(idx int) (uint32, error) {
	row, col, minor, err := d.FrameCoords(idx)
	if err != nil {
		return 0, err
	}
	return d.PackFAR(row, col, minor), nil
}

// ColumnSpanFrames returns the linear frame indices covering columns
// [col0, col1] in rows [row0, row1], the shape of a rectangular
// reconfigurable partition.
func (d *Device) ColumnSpanFrames(row0, row1, col0, col1 int) ([]int, error) {
	if row0 > row1 || col0 > col1 {
		return nil, fmt.Errorf("fpga: empty span rows %d-%d cols %d-%d", row0, row1, col0, col1)
	}
	var frames []int
	for r := row0; r <= row1; r++ {
		for c := col0; c <= col1; c++ {
			for m := 0; m < d.Cols[c].FramesPerColumn(); m++ {
				idx, err := d.FrameIndex(r, c, m)
				if err != nil {
					return nil, err
				}
				frames = append(frames, idx)
			}
		}
	}
	return frames, nil
}

// SpanResources returns the primitives contained in the rectangle
// [row0,row1] x [col0,col1].
func (d *Device) SpanResources(row0, row1, col0, col1 int) Resources {
	var res Resources
	for c := col0; c <= col1 && c < len(d.Cols); c++ {
		colRes := d.Cols[c].ColumnResources()
		for r := row0; r <= row1 && r < d.Rows; r++ {
			res = res.Add(colRes)
		}
	}
	return res
}

// XC7K325TIDCode is the real JTAG/configuration IDCODE of the paper's
// Kintex-7 XC7K325T.
const XC7K325TIDCode uint32 = 0x03651093

// XC7A100TIDCode is the real IDCODE of the Artix-7 XC7A100T, the
// portability target ("the proposed implementation can be ported to all
// Xilinx FPGA devices that support DPR", paper §V).
const XC7A100TIDCode uint32 = 0x13631093

// NewKintex7 returns a reduced-geometry stand-in for the XC7K325T with
// the 7-series frame architecture. The column mix provides comfortably
// more fabric than the paper's full SoC uses (Table III: 74 393 LUTs,
// 92 BRAMs, 47 DSPs) while keeping simulated configuration images small
// enough to sweep quickly.
func NewKintex7() *Device {
	var cols []ColumnKind
	// Repeating pattern per region: 6 CLB, 1 BRAM, 6 CLB, 1 DSP. Six
	// repetitions x 7 rows gives 201 600 LUTs / 403 200 FFs / 420 RAMB36
	// / 840 DSPs — within a few percent of the real XC7K325T (203 800
	// LUTs, 445 RAMB36, 840 DSPs) — and a ~10.5 MB full-device
	// configuration image (real: ~11.3 MB).
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			cols = append(cols, ColCLB)
		}
		cols = append(cols, ColBRAM)
		for j := 0; j < 6; j++ {
			cols = append(cols, ColCLB)
		}
		cols = append(cols, ColDSP)
	}
	return NewDevice("XC7K325T-sim", XC7K325TIDCode, 7, cols)
}

// NewArtix7 returns a reduced-geometry stand-in for the Artix-7
// XC7A100T — a smaller 7-series part sharing the frame architecture.
// Three repetitions x 4 rows gives 57 600 LUTs / 115 200 FFs / 120
// RAMB36 / 240 DSPs (real: 63 400 LUTs, 135 RAMB36, 240 DSPs). The
// RV-CAP portability claim is demonstrated by running the full flow
// unchanged on this device.
func NewArtix7() *Device {
	var cols []ColumnKind
	for i := 0; i < 3; i++ {
		for j := 0; j < 6; j++ {
			cols = append(cols, ColCLB)
		}
		cols = append(cols, ColBRAM)
		for j := 0; j < 6; j++ {
			cols = append(cols, ColCLB)
		}
		cols = append(cols, ColDSP)
	}
	return NewDevice("XC7A100T-sim", XC7A100TIDCode, 4, cols)
}

package fpga

// This file captures the paper's floorplan (Fig. 4): one reconfigurable
// partition hosting the image-filter modules, with the static region
// (Ariane, peripherals, RV-CAP) around it.

// DefaultRPReserve is the RP resource budget the paper reserves: "The RP
// size is defined to be 3200 LUTs, 6400 FFs, 20 DSP blocks, and 30
// BRAMs" (§IV-A). Table III utilisation percentages are computed against
// these numbers.
var DefaultRPReserve = Resources{LUT: 3200, FF: 6400, BRAM: 30, DSP: 20}

// DefaultRPName is the name of the paper's single partition.
const DefaultRPName = "RP0"

// Default RP placement on the NewKintex7 geometry: two clock regions
// tall (rows 2-3, mid-device as in Fig. 4) and 15 columns wide
// (columns 6-20: 12 CLB + 2 BRAM + 1 DSP per row), for 2x772 = 1544
// frames. The physical span (9600 LUTs / 19200 FFs / 40 BRAM / 40 DSP)
// exceeds the reserve, as real pblocks do (routing margin).
const (
	defaultRPRow0, defaultRPRow1 = 2, 3
	defaultRPCol0, defaultRPCol1 = 6, 20
)

// NewSpanPartition adds a rectangular partition covering rows
// [row0,row1] x columns [col0,col1] to the fabric, with the given
// advertised reserve.
func NewSpanPartition(f *Fabric, name string, row0, row1, col0, col1 int, reserve Resources) (*Partition, error) {
	frames, err := f.Dev.ColumnSpanFrames(row0, row1, col0, col1)
	if err != nil {
		return nil, err
	}
	span := f.Dev.SpanResources(row0, row1, col0, col1)
	return f.AddPartition(name, frames, reserve, span)
}

// AddDefaultPartition places the paper's RP on the fabric.
func AddDefaultPartition(f *Fabric) (*Partition, error) {
	return NewSpanPartition(f, DefaultRPName,
		defaultRPRow0, defaultRPRow1, defaultRPCol0, defaultRPCol1, DefaultRPReserve)
}

// SweepSpan describes one point of the Fig. 3 RP-size sweep: a partition
// rows tall and reps repetition-patterns (14 columns each) wide.
type SweepSpan struct {
	Name string
	Rows int
	Reps int
}

// DefaultSweep is the RP-size ladder used to regenerate Fig. 3
// (reconfiguration time vs RP size), spanning roughly 150 KB to 2.0 MB
// of partial bitstream.
var DefaultSweep = []SweepSpan{
	{"rp-1x0.5", 1, 0}, // half a repetition: 7 columns
	{"rp-1x1", 1, 1},
	{"rp-1x2", 1, 2},
	{"rp-2x2", 2, 2},
	{"rp-2x3", 2, 3},
	{"rp-2x4", 2, 4},
}

// AddSweepPartition places a sweep partition in the top-left of the
// fabric (fresh fabrics are used per sweep point, so spans may overlap
// across points).
func AddSweepPartition(f *Fabric, s SweepSpan) (*Partition, error) {
	cols := s.Reps * 14
	if cols == 0 {
		cols = 7 // the half-repetition point
	}
	return NewSpanPartition(f, s.Name, 0, s.Rows-1, 0, cols-1, DefaultRPReserve)
}

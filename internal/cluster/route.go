package cluster

import (
	"fmt"

	"rvcap/internal/sched"
	"rvcap/internal/sim"
)

// Policy selects how the dispatcher routes jobs across boards.
type Policy int

const (
	// LeastLoaded routes every job to the board with the smallest
	// modelled backlog (estimated service plus reconfiguration cost of
	// everything already routed there). Ties go to the lowest-numbered
	// board.
	LeastLoaded Policy = iota
	// ModuleAffinity prefers a board whose modelled partition set
	// already holds the job's module — the cross-board generalisation of
	// configuration reuse: a routed job that lands where its module is
	// resident skips the ICAP transfer entirely. Among affine boards
	// (or all boards when none is), least-loaded breaks the tie.
	ModuleAffinity
	// BitstreamLocality routes jobs where the bitstream is already
	// staged: it prefers a board whose modelled DDR cache holds the
	// job's image (skipping the slow SD staging path), then a board
	// where the module is resident, then least-loaded. This exploits
	// the same configuration-reuse asymmetry as ModuleAffinity one
	// level down the storage hierarchy.
	BitstreamLocality
)

// Policies lists every routing policy in definition order.
var Policies = []Policy{LeastLoaded, ModuleAffinity, BitstreamLocality}

// String returns the policy's stable identifier (used in reports and
// BENCH_fleet.json).
func (p Policy) String() string {
	switch p {
	case LeastLoaded:
		return "least-loaded"
	case ModuleAffinity:
		return "module-affinity"
	case BitstreamLocality:
		return "bitstream-locality"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy resolves a stable identifier back to its policy.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown routing policy %q", s)
}

// Routing cost model, in cycles. The router never sees simulation
// results (that would couple board kernels and break parallel
// determinism), so it prices a routed job with nominal costs: a
// reconfiguration when the module is not modelled resident, plus the
// SD staging ahead of it when the image is not modelled cached. The
// absolute values only need the right ordering — staging costs several
// reconfigurations, a resident hit costs nothing — for the policies to
// differentiate.
var (
	estReconfigCycles = sim.FromMicros(60)
	estStageCycles    = sim.FromMicros(240)
)

// boardModel is the router's deterministic view of one board: the
// modelled backlog and LRU models of the partitions' resident modules
// and the DDR bitstream cache, both held as module intern IDs (see
// sched.Modules) so the per-job route never compares strings. Both
// models mirror the board runtime's real structures in capacity only;
// they are intentionally coarse — a mismodel costs a cache miss on the
// board, never correctness.
type boardModel struct {
	backlog  sim.Time
	resident []int // most-recent last, capacity = board RPs
	cached   []int // most-recent last, capacity = board CacheSlots
}

// touchLRU appends m as the most recent entry of set (capacity cap),
// deduplicating and evicting the oldest entry on overflow.
func touchLRU(set []int, m int, capacity int) []int {
	for i, s := range set {
		if s == m {
			return append(append(set[:i:i], set[i+1:]...), m)
		}
	}
	set = append(set, m)
	if len(set) > capacity {
		set = set[1:]
	}
	return set
}

func contains(set []int, m int) bool {
	for _, s := range set {
		if s == m {
			return true
		}
	}
	return false
}

// router assigns jobs to boards. All state is host-side and updated
// only by route, in arrival order, so the assignment is a pure
// function of the job stream.
type router struct {
	policy     Policy
	rps, slots int
	boards     []boardModel
	lastBoard  []int // module ID -> board of its previous job (-1 none)
}

func newRouter(policy Policy, boards, rps, slots int) *router {
	return &router{
		policy: policy,
		rps:    rps,
		slots:  slots,
		boards: make([]boardModel, boards),
	}
}

// decision is one routing outcome plus the model state that produced
// it (for the fleet metrics).
type decision struct {
	board       int
	localityHit bool // image modelled cached on the chosen board
	affinityHit bool // module modelled resident on the chosen board
	crossBoard  bool // module's previous job ran on a different board
}

// route assigns job to a board and updates the models. The job's
// ModuleID (interned by the fleet workload generator) keys every model
// lookup.
//
//lint:hot
func (ro *router) route(job *sched.Job) decision {
	mod := job.ModuleID
	pick := -1
	switch ro.policy {
	case BitstreamLocality:
		pick = ro.leastLoadedWhere(func(b *boardModel) bool { return contains(b.cached, mod) })
		if pick < 0 {
			pick = ro.leastLoadedWhere(func(b *boardModel) bool { return contains(b.resident, mod) })
		}
	case ModuleAffinity:
		pick = ro.leastLoadedWhere(func(b *boardModel) bool { return contains(b.resident, mod) })
	}
	if pick < 0 {
		pick = ro.leastLoadedWhere(func(*boardModel) bool { return true })
	}

	b := &ro.boards[pick]
	d := decision{
		board:       pick,
		localityHit: contains(b.cached, mod),
		affinityHit: contains(b.resident, mod),
	}
	for len(ro.lastBoard) <= mod {
		ro.lastBoard = append(ro.lastBoard, -1)
	}
	if prev := ro.lastBoard[mod]; prev >= 0 && prev != pick {
		d.crossBoard = true
	}
	ro.lastBoard[mod] = pick

	// Charge the modelled cost and teach the models the new state.
	cost := job.Service
	if !d.affinityHit {
		cost += estReconfigCycles
		if !d.localityHit {
			cost += estStageCycles
		}
	}
	b.backlog += cost
	b.resident = touchLRU(b.resident, mod, ro.rps)
	b.cached = touchLRU(b.cached, mod, ro.slots)
	return d
}

// leastLoadedWhere returns the lowest-backlog board satisfying ok, or
// -1 when none does. Ties go to the lowest index, so the pick is
// deterministic.
func (ro *router) leastLoadedWhere(ok func(*boardModel) bool) int {
	pick := -1
	for i := range ro.boards {
		if !ok(&ro.boards[i]) {
			continue
		}
		if pick < 0 || ro.boards[i].backlog < ro.boards[pick].backlog {
			pick = i
		}
	}
	return pick
}

// Package cluster shards the DPR-as-a-service simulation across a
// fleet of Boards behind one dispatcher — the cluster analogue of the
// single-board runtime in internal/sched, pointed at by the Cross-Chip
// PR line of work (a fleet of FPGA boards initialised and managed as
// one system).
//
// The split of responsibilities is what makes the fleet both parallel
// and deterministic:
//
//   - The *router* is pure host-side code: it walks the merged
//     multi-tenant job stream once, in arrival order, and assigns every
//     job to a board using only its own deterministic models of board
//     state (estimated backlog, modelled module residency, modelled
//     bitstream-cache contents). It never reads simulation results, so
//     its decisions are a pure function of (workload, policy, fleet
//     shape).
//   - Each *board* then plays its routed share on its own private
//     sim.Kernel — one SoC, one RV-CAP datapath, one sched runtime per
//     shard — via the internal/runner pool, one host goroutine per
//     board. Boards share nothing, so fleet throughput scales with
//     host cores while every board's trace stays byte-deterministic:
//     the same fleet Config produces byte-identical per-board reports
//     at every worker count.
//
// Jobs keep their global arrival cycles when routed, so all boards run
// on one common timeline: fleet makespan is the latest completion on
// any board, and cluster-wide latency percentiles are computed over
// the union of all jobs.
package cluster

import (
	"fmt"

	"rvcap/internal/hist"
	"rvcap/internal/runner"
	"rvcap/internal/sched"
	"rvcap/internal/sim"
)

// Config fully determines one fleet scenario.
type Config struct {
	// Seed drives the multi-tenant workload and, offset per board, the
	// boards' fault plans.
	Seed int64
	// Boards is the number of board shards (default 2).
	Boards int
	// Policy selects the routing policy (default LeastLoaded).
	Policy Policy
	// Tenants is the number of independent workload streams merged into
	// the offered job stream (default 3).
	Tenants int
	// Jobs is the total fleet workload length (default 48; must be at
	// least Tenants so every tenant offers work).
	Jobs int
	// Load is the offered compute load relative to the aggregate
	// capacity of the whole fleet (Boards x per-board partitions;
	// default 0.7).
	Load float64
	// Locality is each tenant's module temporal locality (default 0.45).
	Locality float64
	// Board is the per-board template: Policy, RPs, CacheSlots,
	// ReorderWindow and the fault fields apply to every board. Its
	// Seed/Jobs/Load/Locality fields are ignored — the cluster owns the
	// workload, and board i's fault plan is keyed by Seed+i.
	Board sched.Config
	// Workers is the host worker count for running boards (0 = one per
	// core, 1 = serial). Results are byte-identical for every value.
	Workers int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Boards == 0 {
		c.Boards = 2
	}
	if c.Tenants == 0 {
		c.Tenants = 3
	}
	if c.Jobs == 0 {
		c.Jobs = 48
	}
	if c.Load == 0 {
		c.Load = 0.7
	}
	if c.Locality == 0 {
		c.Locality = 0.45
	}
	return c
}

// BoardStat is one board's slice of the fleet outcome: its routed share
// and the routing-model hits, wrapped around the board's own
// service-level report.
type BoardStat struct {
	// Routed is the number of jobs the dispatcher sent to this board.
	Routed int `json:"routed"`
	// LocalityHits counts jobs routed here while the router's model had
	// the job's bitstream already in this board's DDR cache.
	LocalityHits int `json:"locality_hits"`
	// AffinityHits counts jobs routed here while the router's model had
	// the job's module resident in one of this board's partitions.
	AffinityHits int `json:"affinity_hits"`
	*sched.Report
}

// Result is the cluster-wide outcome of one fleet scenario.
type Result struct {
	Policy  string  `json:"policy"`
	Boards  int     `json:"boards"`
	Tenants int     `json:"tenants"`
	Jobs    int     `json:"jobs"`
	Load    float64 `json:"load"`

	// MakespanMicros is the latest completion on any board (all boards
	// share the workload's global arrival timeline).
	MakespanMicros float64 `json:"makespan_micros"`

	// Fleet-wide queue-to-completion latency distribution, over the
	// union of every board's jobs.
	P50Micros  float64 `json:"p50_micros"`
	P95Micros  float64 `json:"p95_micros"`
	P99Micros  float64 `json:"p99_micros"`
	MeanMicros float64 `json:"mean_micros"`
	MaxMicros  float64 `json:"max_micros"`

	// GoodputJobsPerMs is completed jobs per millisecond of fleet
	// makespan.
	GoodputJobsPerMs float64 `json:"goodput_jobs_per_ms"`

	// Reconfigs is the fleet total of module load attempts (Σ boards,
	// each of which is Σ its partitions). CrossBoardMoves counts jobs
	// whose module's previous job ran on a different board — the
	// cross-board reconfiguration pressure bitstream-locality routing
	// exists to reduce. LocalityHits/AffinityHits are the fleet sums of
	// the per-board routing-model hits.
	Reconfigs       int `json:"reconfigs"`
	CrossBoardMoves int `json:"cross_board_moves"`
	LocalityHits    int `json:"locality_hits"`
	AffinityHits    int `json:"affinity_hits"`

	// KernelEvents is the fleet total of simulation events fired across
	// all board kernels (aggregate events/sec = KernelEvents over host
	// wall time; the host timing lives in the bench harness, not here,
	// so this struct stays byte-deterministic).
	KernelEvents uint64 `json:"kernel_events"`

	// Latency is the fleet-wide latency histogram: the exact bucketwise
	// merge of every board's snapshot, identical to what one recorder
	// over the union stream would have produced. The fleet quantiles
	// above are computed from it — no per-job copy exists at this layer.
	Latency *hist.Snapshot `json:"latency_hist,omitempty"`

	PerBoard []BoardStat `json:"per_board"`
}

// Run plays one fleet scenario: generate the multi-tenant workload,
// route it across the boards, run every board on the runner pool, and
// aggregate. Equal Configs give byte-identical Results at every
// Workers value.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Boards < 1 {
		return nil, fmt.Errorf("cluster: Boards = %d, need at least 1", cfg.Boards)
	}
	if cfg.Jobs < cfg.Tenants {
		return nil, fmt.Errorf("cluster: Jobs = %d below Tenants = %d (every tenant must offer work)", cfg.Jobs, cfg.Tenants)
	}

	// Build the boards first: a bad template must fail before any
	// workload is generated or routed.
	boards := make([]*sched.Board, cfg.Boards)
	for i := range boards {
		bcfg := cfg.Board
		// The cluster owns the workload; the board seed only keys the
		// per-board fault plan, offset so boards draw distinct fault
		// histories from one fleet seed.
		bcfg.Seed = cfg.Seed + int64(i)
		b, err := sched.NewBoard(fmt.Sprintf("B%d", i), bcfg)
		if err != nil {
			return nil, err
		}
		boards[i] = b
	}
	boardRPs := boards[0].Config().RPs

	jobs, err := FleetWorkload{
		Seed: cfg.Seed, Tenants: cfg.Tenants, Jobs: cfg.Jobs,
		Load: cfg.Load, Locality: cfg.Locality,
		Boards: cfg.Boards, BoardRPs: boardRPs,
	}.Generate()
	if err != nil {
		return nil, err
	}

	ro := newRouter(cfg.Policy, cfg.Boards, boardRPs, boards[0].Config().CacheSlots)
	perBoard := make([][]*sched.Job, cfg.Boards)
	stats := make([]BoardStat, cfg.Boards)
	res := &Result{
		Policy:  cfg.Policy.String(),
		Boards:  cfg.Boards,
		Tenants: cfg.Tenants,
		Jobs:    len(jobs),
		Load:    cfg.Load,
	}
	for _, job := range jobs {
		d := ro.route(job)
		perBoard[d.board] = append(perBoard[d.board], job)
		stats[d.board].Routed++
		if d.localityHit {
			stats[d.board].LocalityHits++
			res.LocalityHits++
		}
		if d.affinityHit {
			stats[d.board].AffinityHits++
			res.AffinityHits++
		}
		if d.crossBoard {
			res.CrossBoardMoves++
		}
	}

	// Every board runs its routed share on its own kernel; the runner
	// fans the boards across host cores and delivers reports in board
	// order, so the fleet result does not depend on Workers.
	reports, err := runner.Map(cfg.Workers, cfg.Boards, func(i int) (*sched.Report, error) {
		return boards[i].Run(perBoard[i])
	})
	if err != nil {
		return nil, err
	}

	// Fleet latency: merge the per-board histogram snapshots. The merge
	// is an exact bucketwise sum, so the fleet quantiles are precisely
	// what a single recorder over the union of all boards' jobs would
	// report — without this layer ever copying a per-job latency.
	fleet := hist.New()
	for i, rep := range reports {
		fleet.MergeSnapshot(rep.Latency)
		if rep.MakespanMicros > res.MakespanMicros {
			res.MakespanMicros = rep.MakespanMicros
		}
		stats[i].Report = rep
		res.Reconfigs += rep.Reconfigs
		res.KernelEvents += rep.KernelEvents
		res.PerBoard = append(res.PerBoard, stats[i])
	}
	res.P50Micros = float64(fleet.Quantile(0.50)) / sim.CyclesPerMicrosecond
	res.P95Micros = float64(fleet.Quantile(0.95)) / sim.CyclesPerMicrosecond
	res.P99Micros = float64(fleet.Quantile(0.99)) / sim.CyclesPerMicrosecond
	res.MaxMicros = float64(fleet.Max()) / sim.CyclesPerMicrosecond
	res.MeanMicros = fleet.Mean() / sim.CyclesPerMicrosecond
	res.Latency = fleet.Snapshot()
	if res.MakespanMicros > 0 {
		res.GoodputJobsPerMs = float64(len(jobs)) / (res.MakespanMicros / 1000)
	}
	return res, nil
}

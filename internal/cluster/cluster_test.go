package cluster

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"rvcap/internal/hist"
	"rvcap/internal/runner"
	"rvcap/internal/sched"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Seed:    7,
		Boards:  3,
		Tenants: 4,
		Jobs:    60,
		Load:    0.8,
		Board:   sched.Config{RPs: 3, CacheSlots: 4},
	}
}

// The fleet contract: the same Config produces byte-identical results
// at every worker count — serial, bounded pool, one-per-core.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	for _, policy := range Policies {
		cfg := testConfig(t)
		cfg.Policy = policy

		cfg.Workers = 1
		serial, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v serial: %v", policy, err)
		}
		cfg.Workers = 4
		pooled, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v pooled: %v", policy, err)
		}
		cfg.Workers = 0
		perCore, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v per-core: %v", policy, err)
		}
		if !reflect.DeepEqual(serial, pooled) {
			t.Errorf("%v: Workers=1 vs Workers=4 results differ", policy)
		}
		if !reflect.DeepEqual(serial, perCore) {
			t.Errorf("%v: Workers=1 vs Workers=0 results differ", policy)
		}
	}
}

func TestFleetAccounting(t *testing.T) {
	cfg := testConfig(t)
	cfg.Policy = ModuleAffinity
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != cfg.Jobs {
		t.Errorf("Jobs = %d, want %d", res.Jobs, cfg.Jobs)
	}
	if len(res.PerBoard) != cfg.Boards {
		t.Fatalf("PerBoard has %d entries, want %d", len(res.PerBoard), cfg.Boards)
	}
	routed := 0
	var events uint64
	reconfigs := 0
	for i, bs := range res.PerBoard {
		want := "B" + string(rune('0'+i))
		if bs.Board != want {
			t.Errorf("board %d named %q, want %q", i, bs.Board, want)
		}
		if bs.Report == nil {
			t.Fatalf("board %d has no report", i)
		}
		if bs.Report.Jobs != bs.Routed {
			t.Errorf("board %d completed %d jobs but was routed %d", i, bs.Report.Jobs, bs.Routed)
		}
		routed += bs.Routed
		events += bs.KernelEvents
		reconfigs += bs.Reconfigs
	}
	if routed != cfg.Jobs {
		t.Errorf("boards were routed %d jobs total, want %d", routed, cfg.Jobs)
	}
	if res.KernelEvents != events {
		t.Errorf("KernelEvents = %d, want per-board sum %d", res.KernelEvents, events)
	}
	if res.Reconfigs != reconfigs {
		t.Errorf("Reconfigs = %d, want per-board sum %d", res.Reconfigs, reconfigs)
	}
	if res.KernelEvents == 0 {
		t.Error("fleet fired no kernel events")
	}
	if res.MakespanMicros <= 0 || res.P50Micros <= 0 || res.GoodputJobsPerMs <= 0 {
		t.Errorf("degenerate fleet metrics: makespan %v p50 %v goodput %v",
			res.MakespanMicros, res.P50Micros, res.GoodputJobsPerMs)
	}
	if res.P50Micros > res.P95Micros || res.P95Micros > res.P99Micros || res.P99Micros > res.MaxMicros {
		t.Errorf("percentiles not monotone: p50 %v p95 %v p99 %v max %v",
			res.P50Micros, res.P95Micros, res.P99Micros, res.MaxMicros)
	}
}

// Bitstream-locality routing exists to cut cross-board module
// migration; against the locality-blind baseline it must not lose.
func TestLocalityRoutingReducesCrossBoardMoves(t *testing.T) {
	cfg := testConfig(t)
	cfg.Jobs = 120

	cfg.Policy = LeastLoaded
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = BitstreamLocality
	loc, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if loc.CrossBoardMoves >= base.CrossBoardMoves {
		t.Errorf("bitstream-locality made %d cross-board moves, least-loaded %d; locality routing should reduce them",
			loc.CrossBoardMoves, base.CrossBoardMoves)
	}
	if loc.LocalityHits == 0 {
		t.Error("bitstream-locality routing never hit its own cache model")
	}
}

func TestPolicyRoundTrip(t *testing.T) {
	for _, p := range Policies {
		got, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", p, err)
		}
		if got != p {
			t.Errorf("round-trip %v -> %q -> %v", p, p.String(), got)
		}
	}
	if _, err := ParsePolicy("round-robin"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}

func TestFleetValidation(t *testing.T) {
	cfg := testConfig(t)
	cfg.Boards = -1
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "Boards") {
		t.Errorf("negative board count not rejected: %v", err)
	}
	cfg = testConfig(t)
	cfg.Tenants = 80 // above Jobs=60
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "Tenants") {
		t.Errorf("Jobs < Tenants not rejected: %v", err)
	}
	cfg = testConfig(t)
	cfg.Board.CacheSlots = 1
	if _, err := Run(cfg); err == nil {
		t.Error("bad board template not rejected")
	}
}

func TestFleetWorkloadMerge(t *testing.T) {
	w := FleetWorkload{Seed: 5, Tenants: 3, Jobs: 40, Load: 0.7, Locality: 0.45, Boards: 2, BoardRPs: 3}
	jobs, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != w.Jobs {
		t.Fatalf("generated %d jobs, want %d", len(jobs), w.Jobs)
	}
	tenants := make(map[int]int)
	for i, job := range jobs {
		if job.ID != i {
			t.Errorf("job %d has ID %d; IDs must be the global arrival order", i, job.ID)
		}
		if i > 0 && job.Arrival < jobs[i-1].Arrival {
			t.Errorf("job %d arrives at %d, before job %d at %d", i, job.Arrival, i-1, jobs[i-1].Arrival)
		}
		tenants[job.Tenant]++
	}
	if len(tenants) != w.Tenants {
		t.Errorf("merged stream covers %d tenants, want %d", len(tenants), w.Tenants)
	}
	again, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jobs, again) {
		t.Error("FleetWorkload.Generate is not deterministic")
	}
}

// A single-board fleet must degenerate cleanly: every job routes to B0
// and the board report covers the whole stream.
func TestSingleBoardFleet(t *testing.T) {
	cfg := testConfig(t)
	cfg.Boards = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossBoardMoves != 0 {
		t.Errorf("single board made %d cross-board moves", res.CrossBoardMoves)
	}
	if res.PerBoard[0].Routed != cfg.Jobs {
		t.Errorf("B0 routed %d jobs, want all %d", res.PerBoard[0].Routed, cfg.Jobs)
	}
}

// TestFleetHistogramMergeExact is the property test behind the
// histogram fleet report: the bucketwise merge of the per-board
// latency snapshots must equal — same buckets, same quantiles — the
// histogram a single recorder over every board's jobs would have
// produced, at every worker count. This is what licenses dropping the
// fleet-wide per-job latency copy.
func TestFleetHistogramMergeExact(t *testing.T) {
	cfg := testConfig(t).withDefaults()
	for _, policy := range Policies {
		for _, workers := range []int{1, 2, 4, 0} {
			boards := make([]*sched.Board, cfg.Boards)
			for i := range boards {
				bcfg := cfg.Board
				bcfg.Seed = cfg.Seed + int64(i)
				b, err := sched.NewBoard(fmt.Sprintf("B%d", i), bcfg)
				if err != nil {
					t.Fatal(err)
				}
				boards[i] = b
			}
			jobs, err := FleetWorkload{
				Seed: cfg.Seed, Tenants: cfg.Tenants, Jobs: cfg.Jobs,
				Load: cfg.Load, Locality: cfg.Locality,
				Boards: cfg.Boards, BoardRPs: boards[0].Config().RPs,
			}.Generate()
			if err != nil {
				t.Fatal(err)
			}
			ro := newRouter(policy, cfg.Boards, boards[0].Config().RPs, boards[0].Config().CacheSlots)
			perBoard := make([][]*sched.Job, cfg.Boards)
			for _, job := range jobs {
				d := ro.route(job)
				perBoard[d.board] = append(perBoard[d.board], job)
			}
			reports, err := runner.Map(workers, cfg.Boards, func(i int) (*sched.Report, error) {
				return boards[i].Run(perBoard[i])
			})
			if err != nil {
				t.Fatal(err)
			}

			// Whole-run recorder over the union of every board's jobs
			// (Board.Run mutates the job records in place).
			whole := hist.New()
			for _, j := range jobs {
				whole.Record(uint64(j.Completion - j.Arrival))
			}
			merged := hist.New()
			for _, rep := range reports {
				merged.MergeSnapshot(rep.Latency)
			}
			if !reflect.DeepEqual(merged.Snapshot(), whole.Snapshot()) {
				t.Fatalf("%v workers=%d: merged per-board snapshots differ from whole-run histogram", policy, workers)
			}
			for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999, 1.0} {
				if merged.Quantile(q) != whole.Quantile(q) {
					t.Fatalf("%v workers=%d q=%v: merged %d != whole %d",
						policy, workers, q, merged.Quantile(q), whole.Quantile(q))
				}
			}

			// And the public fleet entry point reports exactly the merge.
			fcfg := cfg
			fcfg.Policy = policy
			fcfg.Workers = workers
			res, err := Run(fcfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Latency, whole.Snapshot()) {
				t.Fatalf("%v workers=%d: Result.Latency differs from whole-run snapshot", policy, workers)
			}
		}
	}
}

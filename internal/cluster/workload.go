package cluster

import (
	"fmt"
	"sort"

	"rvcap/internal/sched"
)

// FleetWorkload parameterises the merged multi-tenant job stream the
// dispatcher routes across the fleet. Each tenant is an independent
// sched.Workload stream with its own seed; the merge interleaves them
// by arrival cycle into one open-loop offered load.
type FleetWorkload struct {
	// Seed drives every tenant's stream (tenant t uses Seed*1000+t, so
	// fleet seeds and board fault seeds never collide).
	Seed int64
	// Tenants is the number of independent streams.
	Tenants int
	// Jobs is the total stream length; each tenant offers Jobs/Tenants
	// jobs (remainder spread over the first tenants).
	Jobs int
	// Load is the offered compute load relative to the aggregate
	// capacity of the whole fleet (Boards x BoardRPs partitions).
	Load float64
	// Locality is each tenant's module temporal locality.
	Locality float64
	// Boards and BoardRPs describe the fleet the load is normalised
	// against.
	Boards, BoardRPs int
}

// Generate produces the merged stream: per-tenant sched.Workload
// streams scaled so their sum offers Load against the whole fleet,
// merged by arrival cycle with a deterministic (arrival, tenant)
// tie-break, IDs reassigned to the global arrival order. The result is
// a pure function of the FleetWorkload value.
func (w FleetWorkload) Generate() ([]*sched.Job, error) {
	if w.Tenants <= 0 {
		return nil, fmt.Errorf("cluster: workload needs a positive tenant count (got %d)", w.Tenants)
	}
	if w.Jobs < w.Tenants {
		return nil, fmt.Errorf("cluster: %d jobs cannot cover %d tenants", w.Jobs, w.Tenants)
	}
	if w.Boards <= 0 || w.BoardRPs <= 0 {
		return nil, fmt.Errorf("cluster: fleet shape %dx%d must be positive", w.Boards, w.BoardRPs)
	}
	var merged []*sched.Job
	for t := 0; t < w.Tenants; t++ {
		n := w.Jobs / w.Tenants
		if t < w.Jobs%w.Tenants {
			n++
		}
		// Each tenant offers its share of the fleet-wide load. The
		// per-tenant generator normalises against RPs partitions, so
		// spreading Load*Boards over Tenants streams of BoardRPs
		// partitions makes the merged stream offer Load against the
		// whole fleet.
		stream, err := sched.Workload{
			Seed:     w.Seed*1000 + int64(t),
			Jobs:     n,
			Load:     w.Load * float64(w.Boards) / float64(w.Tenants),
			RPs:      w.BoardRPs,
			Locality: w.Locality,
		}.Generate()
		if err != nil {
			return nil, err
		}
		for _, job := range stream {
			job.Tenant = t
		}
		merged = append(merged, stream...)
	}
	// Stable sort plus the tenant tie-break makes the merged order a
	// pure function of the streams even when two tenants' jobs land on
	// the same cycle.
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].Arrival != merged[j].Arrival {
			return merged[i].Arrival < merged[j].Arrival
		}
		return merged[i].Tenant < merged[j].Tenant
	})
	for i, job := range merged {
		job.ID = i
	}
	return merged, nil
}

package rvcap

import (
	"bytes"
	"fmt"

	"rvcap/internal/accel"
	"rvcap/internal/driver"
	"rvcap/internal/fat32"
	"rvcap/internal/sim"
	"rvcap/internal/soc"
)

// Session is the software-side handle passed to System.Run: every method
// executes on the simulated RISC-V hart with full MMIO timing, so the
// returned Timing values are hardware measurements, not host estimates.
type Session struct {
	p   *sim.Proc
	sys *System
}

// Reconfigure loads a module into the partition through the RV-CAP
// controller (the paper's Listing 1 flow, non-blocking/interrupt mode).
func (ses *Session) Reconfigure(m *Module) (Timing, error) {
	res, err := ses.sys.drv.InitReconfigProcess(ses.p, m.desc)
	if err != nil {
		return Timing{}, err
	}
	return Timing{
		DecisionMicros: res.DecisionMicros,
		ReconfigMicros: res.ReconfigMicros,
		Bytes:          res.Bytes,
	}, nil
}

// ReconfigureBlocking is Reconfigure with the DMA status-register
// polling mode instead of the completion interrupt.
func (ses *Session) ReconfigureBlocking(m *Module) (Timing, error) {
	prev := ses.sys.drv.Mode
	ses.sys.drv.Mode = driver.Blocking
	defer func() { ses.sys.drv.Mode = prev }()
	return ses.Reconfigure(m)
}

// ReconfigureHWICAP loads a module through the AXI_HWICAP vendor
// baseline (the paper's Listing 2 flow) with the given store-loop
// unroll factor (0 = the paper's 16).
func (ses *Session) ReconfigureHWICAP(m *Module, unroll int) (Timing, error) {
	prev := ses.sys.hwicap.Unroll
	if unroll > 0 {
		ses.sys.hwicap.Unroll = unroll
	} else {
		ses.sys.hwicap.Unroll = 16
	}
	defer func() { ses.sys.hwicap.Unroll = prev }()
	res, err := ses.sys.hwicap.InitReconfigProcess(ses.p, m.desc)
	if err != nil {
		return Timing{}, err
	}
	return Timing{ReconfigMicros: res.ReconfigMicros, Bytes: res.Bytes}, nil
}

// Workload DDR addresses used by FilterImage.
const (
	filterInAddr  = 0x0020_0000
	filterOutAddr = 0x0030_0000
)

// FilterImage streams src through the currently loaded filter RM in
// acceleration mode and returns the output image and the measured T_c.
func (ses *Session) FilterImage(src *Image) (*Image, Timing, error) {
	if ses.sys.hw.RP == nil || ses.sys.hw.RP.Active() == "" {
		return nil, Timing{}, driver.ErrNoActiveModule
	}
	if src.W != accel.DefaultWidth || src.H != accel.DefaultHeight {
		return nil, Timing{}, fmt.Errorf("rvcap: built-in filter RMs are synthesised for %dx%d images",
			accel.DefaultWidth, accel.DefaultHeight)
	}
	ses.sys.hw.DDR.Load(filterInAddr, src.Pix)
	prev := ses.sys.drv.Mode
	ses.sys.drv.Mode = driver.Blocking // T_c is the pure accelerator time
	// Restore via defer: a PanicError unwinding out of RunAccelerator
	// (the kernel rethrows process panics) must not leave the shared
	// driver stuck in Blocking mode for every later Session call.
	defer func() { ses.sys.drv.Mode = prev }()
	res, err := ses.sys.drv.RunAccelerator(ses.p, filterInAddr, filterOutAddr, uint32(len(src.Pix)))
	if err != nil {
		return nil, Timing{}, err
	}
	out := accel.NewImage(src.W, src.H)
	copy(out.Pix, ses.sys.hw.DDR.Peek(filterOutAddr, len(out.Pix)))
	return out, Timing{ComputeMicros: res.ComputeMicros, Bytes: res.Bytes}, nil
}

// MountSD initialises the SD card over SPI and mounts its FAT32 volume.
func (ses *Session) MountSD() (*SDVolume, error) {
	sd := driver.NewSD(ses.sys.hw)
	if err := sd.Init(ses.p); err != nil {
		return nil, err
	}
	fs, err := fat32.Mount(ses.p, sd)
	if err != nil {
		return nil, err
	}
	return &SDVolume{ses: ses, fs: fs}, nil
}

// SDVolume is a mounted FAT32 volume on the SD card.
type SDVolume struct {
	ses *Session
	fs  *fat32.FS
}

// List returns the volume's root-directory file names.
func (v *SDVolume) List() ([]string, error) {
	ents, err := v.fs.List(v.ses.p)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name
	}
	return names, nil
}

// ReadFile returns a file's contents.
func (v *SDVolume) ReadFile(name string) ([]byte, error) {
	return v.fs.ReadFile(v.ses.p, name)
}

// WriteFile creates or overwrites a file.
func (v *SDVolume) WriteFile(name string, data []byte) error {
	return v.fs.WriteFile(v.ses.p, name, data)
}

// LoadModules implements Listing 1's init_RModules for the given
// modules: each module's bitstream file is copied from the card to its
// DDR staging address. The on-card contents must match the registered
// bitstream, otherwise the subsequent reconfiguration is rejected by the
// configuration CRC — exactly what happens with a stale file on real
// hardware.
func (v *SDVolume) LoadModules(mods ...*Module) error {
	descs := make([]*driver.ReconfigModule, len(mods))
	for i, m := range mods {
		descs[i] = m.desc
	}
	return driver.InitRModules(v.ses.p, v.ses.sys.hw, v.fs, descs)
}

// Elapsed reads the CLINT real-time counter in microseconds.
func (ses *Session) Elapsed() (float64, error) {
	t := driver.NewTimer(ses.sys.hw)
	ticks, err := t.Now(ses.p)
	if err != nil {
		return 0, err
	}
	return driver.TicksToMicros(ticks), nil
}

// Printf writes to the SoC UART (visible via System.HW().UART.Output()).
func (ses *Session) Printf(format string, args ...interface{}) error {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, format, args...)
	for _, c := range buf.Bytes() {
		if err := ses.sys.hw.Hart.Store32(ses.p, soc.UARTBase+soc.UARTTx, uint32(c)); err != nil {
			return err
		}
	}
	return nil
}

// Sleep advances simulated time by the given microseconds (idle CPU).
func (ses *Session) Sleep(micros float64) {
	ses.p.Sleep(sim.FromMicros(micros))
}
